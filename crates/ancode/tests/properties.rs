//! Property-based tests for the AN-code algebra and the encoded comparisons.

use proptest::prelude::*;
use secbranch_ancode::compare::{encoded_compare_outcome, ConditionOutcome};
use secbranch_ancode::{AnCode, Parameters, Predicate};

fn functional() -> impl Strategy<Value = u32> {
    0u32..63_877
}

fn small_functional() -> impl Strategy<Value = u32> {
    0u32..30_000
}

fn any_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::Eq),
        Just(Predicate::Ne),
        Just(Predicate::Ult),
        Just(Predicate::Ule),
        Just(Predicate::Ugt),
        Just(Predicate::Uge),
    ]
}

proptest! {
    /// Encode/decode round-trips for every in-range functional value.
    #[test]
    fn encode_decode_roundtrip(v in functional()) {
        let code = AnCode::with_functional_bits(63_877, 16).unwrap();
        let w = code.encode(v).unwrap();
        prop_assert!(code.is_valid(w));
        prop_assert_eq!(code.decode(w).unwrap(), v);
    }

    /// The code is closed under addition (Equation 1).
    #[test]
    fn addition_is_closed(x in small_functional(), y in small_functional()) {
        let code = AnCode::with_functional_bits(63_877, 16).unwrap();
        let xc = code.encode(x).unwrap();
        let yc = code.encode(y).unwrap();
        if x + y < code.functional_max_exclusive() {
            let z = code.add(xc, yc).unwrap();
            prop_assert_eq!(code.decode(z).unwrap(), x + y);
        }
    }

    /// Subtraction of a smaller from a larger value decodes correctly.
    #[test]
    fn subtraction_is_closed(x in functional(), y in functional()) {
        let code = AnCode::with_functional_bits(63_877, 16).unwrap();
        let (hi, lo) = if x >= y { (x, y) } else { (y, x) };
        let hic = code.encode(hi).unwrap();
        let loc = code.encode(lo).unwrap();
        let z = code.sub(hic, loc);
        prop_assert_eq!(code.decode(z).unwrap(), hi - lo);
    }

    /// Any single-bit fault on a code word is detected by the residue check.
    #[test]
    fn single_bit_faults_are_detected(v in functional(), bit in 0u32..32) {
        let code = AnCode::with_functional_bits(63_877, 16).unwrap();
        let w = code.encode(v).unwrap().with_bit_flipped(bit);
        prop_assert!(code.check(w).is_err());
    }

    /// Faults of up to 5 bits on a single code word are always detected
    /// (minimum Hamming distance 6 of the paper's super-A).
    #[test]
    fn up_to_five_bit_faults_on_one_word_are_detected(
        v in functional(),
        bits in proptest::collection::hash_set(0u32..32, 1..=5),
    ) {
        let code = AnCode::with_functional_bits(63_877, 16).unwrap();
        let mut w = code.encode(v).unwrap();
        for b in &bits {
            w = w.with_bit_flipped(*b);
        }
        prop_assert!(
            code.check(w).is_err(),
            "a {}-bit fault went undetected on word {:#010x}", bits.len(), w.raw()
        );
    }

    /// The encoded comparison agrees with the plain comparison for every
    /// predicate and every pair of in-range operands.
    #[test]
    fn encoded_compare_matches_reference(
        x in functional(),
        y in functional(),
        pred in any_predicate(),
    ) {
        let params = Parameters::paper_defaults();
        let code = params.code();
        let xc = code.encode(x).unwrap();
        let yc = code.encode(y).unwrap();
        let outcome = encoded_compare_outcome(&params, pred, xc, yc);
        let expected = if pred.evaluate(x, y) {
            ConditionOutcome::True
        } else {
            ConditionOutcome::False
        };
        prop_assert_eq!(outcome, expected);
    }

    /// A single-bit fault on either comparison operand never produces the
    /// *wrong valid* condition symbol: the decision cannot be flipped. The
    /// ordering class detects the fault outright; the equality class may mask
    /// it (Algorithm 2 cancels the residue for unequal operands) but still
    /// never flips the decision.
    #[test]
    fn operand_faults_never_flip_the_decision_undetected(
        x in functional(),
        y in functional(),
        pred in any_predicate(),
        bit in 0u32..32,
        which in any::<bool>(),
    ) {
        let params = Parameters::paper_defaults();
        let code = params.code();
        let mut xc = code.encode(x).unwrap();
        let mut yc = code.encode(y).unwrap();
        if which {
            xc = xc.with_bit_flipped(bit);
        } else {
            yc = yc.with_bit_flipped(bit);
        }
        let wrong = if pred.evaluate(x, y) {
            ConditionOutcome::False
        } else {
            ConditionOutcome::True
        };
        let outcome = encoded_compare_outcome(&params, pred, xc, yc);
        prop_assert_ne!(outcome, wrong);
        if !pred.is_equality_class() {
            prop_assert_eq!(outcome, ConditionOutcome::Invalid);
        }
    }

    /// Negating the predicate always swaps the outcome on fault-free inputs.
    #[test]
    fn negated_predicate_swaps_outcome(
        x in functional(),
        y in functional(),
        pred in any_predicate(),
    ) {
        let params = Parameters::paper_defaults();
        let code = params.code();
        let xc = code.encode(x).unwrap();
        let yc = code.encode(y).unwrap();
        let a = encoded_compare_outcome(&params, pred, xc, yc);
        let b = encoded_compare_outcome(&params, pred.negated(), xc, yc);
        match (a, b) {
            (ConditionOutcome::True, ConditionOutcome::False)
            | (ConditionOutcome::False, ConditionOutcome::True) => {}
            other => prop_assert!(false, "unexpected outcome pair {:?}", other),
        }
    }

    /// Parameter sets constructed from searched constants keep the reference
    /// semantics for arbitrary alternative encoding constants.
    #[test]
    fn searched_parameters_remain_correct(
        a in 3u32..5_000,
        x in 0u32..1_000,
        y in 0u32..1_000,
        pred in any_predicate(),
    ) {
        let c_ord = secbranch_ancode::params::select_ordering_constant(a);
        let c_eq = secbranch_ancode::params::select_equality_constant(a);
        if let Ok(params) = Parameters::new(a, c_ord, c_eq) {
            let code = params.code();
            let max = code.functional_max_exclusive();
            let (x, y) = (x % max, y % max);
            let xc = code.encode(x).unwrap();
            let yc = code.encode(y).unwrap();
            let outcome = encoded_compare_outcome(&params, pred, xc, yc);
            let expected = if pred.evaluate(x, y) {
                ConditionOutcome::True
            } else {
                ConditionOutcome::False
            };
            prop_assert_eq!(outcome, expected);
        }
    }
}
