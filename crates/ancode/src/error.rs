//! Error type of the AN-code crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or operating on AN-codes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnCodeError {
    /// The encoding constant `A` is invalid (zero, one, or too large for the
    /// configured functional range to fit in 32 bits).
    InvalidConstant {
        /// The offending constant.
        a: u32,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A functional value is outside the representable range of the code.
    ValueOutOfRange {
        /// The offending functional value.
        value: u32,
        /// The exclusive upper bound of the functional range.
        max_exclusive: u32,
    },
    /// A word claimed to be a code word fails the AN-code congruence
    /// `0 == nc mod A`.
    InvalidCodeWord {
        /// The offending raw word.
        word: u32,
        /// The residue `word % A`.
        residue: u32,
    },
    /// The condition constant `C` is invalid (`0 < C < A` is required).
    InvalidConditionConstant {
        /// The offending constant.
        c: u32,
        /// The encoding constant it was paired with.
        a: u32,
    },
    /// An arithmetic operation would leave the functional range of the code
    /// (e.g. the sum of two functional values no longer fits).
    FunctionalOverflow {
        /// Description of the operation that overflowed.
        operation: &'static str,
    },
}

impl fmt::Display for AnCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnCodeError::InvalidConstant { a, reason } => {
                write!(f, "invalid encoding constant A = {a}: {reason}")
            }
            AnCodeError::ValueOutOfRange {
                value,
                max_exclusive,
            } => write!(
                f,
                "functional value {value} is outside the range 0..{max_exclusive}"
            ),
            AnCodeError::InvalidCodeWord { word, residue } => write!(
                f,
                "word {word:#010x} is not a valid code word (residue {residue})"
            ),
            AnCodeError::InvalidConditionConstant { c, a } => {
                write!(f, "condition constant C = {c} must satisfy 0 < C < A = {a}")
            }
            AnCodeError::FunctionalOverflow { operation } => {
                write!(f, "functional overflow in encoded {operation}")
            }
        }
    }
}

impl Error for AnCodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = AnCodeError::InvalidCodeWord {
            word: 0x1234,
            residue: 7,
        };
        let s = e.to_string();
        assert!(s.contains("0x00001234"));
        assert!(s.contains("residue 7"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_std_errors() {
        let e: Box<dyn Error> = Box::new(AnCodeError::FunctionalOverflow { operation: "add" });
        assert!(e.to_string().contains("add"));
    }
}
