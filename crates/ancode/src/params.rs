//! Parameter selection for the protected comparison (Section IV-a).
//!
//! Two constants parameterise the scheme:
//!
//! * the encoding constant `A` of the AN-code (the paper uses the "super A"
//!   `63877`, which maximises the functional range for 16-bit data and has a
//!   minimum Hamming distance of 6), and
//! * the condition constant `C` added before the modulo reduction, chosen to
//!   maximise the Hamming distance between the *true* and *false* condition
//!   symbols while avoiding the all-zero and all-one values that are easy to
//!   force in hardware. The paper selects `C = 29982` for the ordering
//!   predicates and `C = 14991` for the equality predicates, both reaching a
//!   symbol distance of 15 bits.

use crate::code::AnCode;
use crate::compare::{ConditionSymbols, Predicate};
use crate::error::AnCodeError;

/// The encoding constant used throughout the paper's evaluation
/// (a "super A" for 16-bit functional values, minimum Hamming distance 6).
pub const PAPER_A: u32 = 63_877;

/// The paper's condition constant for the ordering predicates
/// (`<`, `<=`, `>`, `>=`).
pub const PAPER_C_ORDERING: u32 = 29_982;

/// The paper's condition constant for the equality predicates (`==`, `!=`).
pub const PAPER_C_EQUALITY: u32 = 14_991;

/// Complete parameter set of a protected-branch deployment: the AN-code plus
/// the two condition constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parameters {
    code: AnCode,
    c_ordering: u32,
    c_equality: u32,
}

impl Parameters {
    /// Creates a parameter set after validating `0 < C < A` for both
    /// condition constants.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::InvalidConstant`] for a bad `A` and
    /// [`AnCodeError::InvalidConditionConstant`] for a bad `C`.
    pub fn new(a: u32, c_ordering: u32, c_equality: u32) -> Result<Self, AnCodeError> {
        let code = AnCode::with_functional_bits(a, 16)?;
        if (1u64 << 32).is_multiple_of(u64::from(a)) {
            return Err(AnCodeError::InvalidConstant {
                a,
                reason: "A divides 2^32, so the wrapped (negative) difference \
                         is indistinguishable from a positive one",
            });
        }
        for c in [c_ordering, c_equality] {
            if c == 0 || c >= a {
                return Err(AnCodeError::InvalidConditionConstant { c, a });
            }
        }
        Ok(Parameters {
            code,
            c_ordering,
            c_equality,
        })
    }

    /// The parameter set used in the paper's evaluation:
    /// `A = 63877`, `C = 29982` (ordering), `C = 14991` (equality).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Parameters::new(PAPER_A, PAPER_C_ORDERING, PAPER_C_EQUALITY)
            .expect("the published constants are valid")
    }

    /// The underlying AN-code.
    #[must_use]
    pub fn code(&self) -> AnCode {
        self.code
    }

    /// The condition constant used by the ordering predicates.
    #[must_use]
    pub fn ordering_constant(&self) -> u32 {
        self.c_ordering
    }

    /// The condition constant used by the equality predicates.
    #[must_use]
    pub fn equality_constant(&self) -> u32 {
        self.c_equality
    }

    /// `2^32 mod A` — the residue that separates a wrapped (negative)
    /// difference from a positive one (Equation 5). `5570` for the paper's
    /// `A`.
    #[must_use]
    pub fn wraparound_residue(&self) -> u32 {
        let a = u64::from(self.code.constant());
        ((1u64 << 32) % a) as u32
    }

    /// The condition symbols (Table I) produced by the encoded comparison for
    /// the given predicate.
    #[must_use]
    pub fn symbols(&self, predicate: Predicate) -> ConditionSymbols {
        let a = self.code.constant();
        let wrap = self.wraparound_residue();
        // The Algorithm-1 kernel reduces modulo A, so the "wrapped" symbol of
        // the ordering class is (2^32 % A + C) mod A; for the paper's
        // constants the sum stays below A and no reduction happens.
        let ord_wrapped = (wrap + self.c_ordering) % a;
        // Algorithm 2 adds the two remainders *without* a final reduction.
        let eq_equal = 2 * self.c_equality;
        let eq_unequal = (wrap + self.c_equality) % a + self.c_equality;
        match predicate {
            // Ordering class, Algorithm 1. The subtraction order is chosen by
            // `encoded_compare`; here only the symbol assignment matters.
            Predicate::Ult | Predicate::Ugt => ConditionSymbols::new(ord_wrapped, self.c_ordering),
            Predicate::Ule | Predicate::Uge => ConditionSymbols::new(self.c_ordering, ord_wrapped),
            // Equality class, Algorithm 2.
            Predicate::Eq => ConditionSymbols::new(eq_equal, eq_unequal),
            Predicate::Ne => ConditionSymbols::new(eq_unequal, eq_equal),
        }
    }

    /// The minimum Hamming distance between the condition symbols over all
    /// predicates — the security level `D` reached by this parameter set
    /// (15 bits for the paper's constants).
    #[must_use]
    pub fn symbol_distance(&self) -> u32 {
        Predicate::ALL
            .iter()
            .map(|p| self.symbols(*p).hamming_distance())
            .min()
            .unwrap_or(0)
    }

    /// One row of Table I for the given predicate: the subtraction order and
    /// the true/false condition values, as formatted by the benchmark
    /// harness.
    #[must_use]
    pub fn table_one_row(&self, predicate: Predicate) -> TableOneRow {
        let symbols = self.symbols(predicate);
        let subtraction = match predicate {
            Predicate::Ult | Predicate::Uge => "xc - yc",
            Predicate::Ugt | Predicate::Ule => "yc - xc",
            Predicate::Eq | Predicate::Ne => "both orders (Algorithm 2)",
        };
        TableOneRow {
            predicate,
            subtraction,
            true_value: symbols.true_value(),
            false_value: symbols.false_value(),
        }
    }
}

impl Default for Parameters {
    fn default() -> Self {
        Parameters::paper_defaults()
    }
}

/// One row of the paper's Table I (condition values per predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOneRow {
    /// The comparison predicate.
    pub predicate: Predicate,
    /// Which operand order the first subtraction uses.
    pub subtraction: &'static str,
    /// Condition value produced when the predicate holds.
    pub true_value: u32,
    /// Condition value produced when the predicate does not hold.
    pub false_value: u32,
}

/// Scores a candidate condition constant for the ordering predicates:
/// the Hamming distance between the two symbols it would produce, or `None`
/// if a symbol would be all-zero / all-one or leave the valid range.
#[must_use]
fn score_ordering_constant(a: u32, c: u32) -> Option<u32> {
    if c == 0 || c >= a {
        return None;
    }
    let wrap = ((1u64 << 32) % u64::from(a)) as u32;
    let t = (wrap + c) % a;
    let f = c;
    if t == f || t == 0 || f == 0 || t == u32::MAX || f == u32::MAX {
        return None;
    }
    Some((t ^ f).count_ones())
}

/// Scores a candidate condition constant for the equality predicates.
#[must_use]
fn score_equality_constant(a: u32, c: u32) -> Option<u32> {
    if c == 0 || c >= a {
        return None;
    }
    let wrap = ((1u64 << 32) % u64::from(a)) as u32;
    let t = 2 * c;
    let f = (wrap + c) % a + c;
    if t == f || t == 0 || f == 0 || t == u32::MAX || f == u32::MAX {
        return None;
    }
    Some((t ^ f).count_ones())
}

/// Exhaustively searches `0 < C < A` for the condition constant that
/// maximises the Hamming distance between the ordering symbols
/// (ties are broken towards the smallest constant).
#[must_use]
pub fn select_ordering_constant(a: u32) -> u32 {
    select_constant(a, score_ordering_constant)
}

/// Exhaustively searches `0 < C < A` for the condition constant that
/// maximises the Hamming distance between the equality symbols.
#[must_use]
pub fn select_equality_constant(a: u32) -> u32 {
    select_constant(a, score_equality_constant)
}

fn select_constant(a: u32, score: impl Fn(u32, u32) -> Option<u32>) -> u32 {
    let mut best_c = 1;
    let mut best_score = 0;
    for c in 1..a {
        if let Some(s) = score(a, c) {
            if s > best_score {
                best_score = s;
                best_c = c;
            }
        }
    }
    best_c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_published_constants() {
        let p = Parameters::paper_defaults();
        assert_eq!(p.code().constant(), 63_877);
        assert_eq!(p.ordering_constant(), 29_982);
        assert_eq!(p.equality_constant(), 14_991);
        assert_eq!(p.wraparound_residue(), 5_570);
        assert_eq!(p.symbol_distance(), 15);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(Parameters::default(), Parameters::paper_defaults());
    }

    #[test]
    fn new_validates_condition_constants() {
        assert!(Parameters::new(PAPER_A, 0, 10).is_err());
        assert!(Parameters::new(PAPER_A, 10, PAPER_A).is_err());
        assert!(Parameters::new(PAPER_A, 10, 10).is_ok());
        assert!(Parameters::new(1, 10, 10).is_err());
    }

    #[test]
    fn searched_constants_reach_the_published_distance() {
        // The paper reaches a symbol distance of 15 bits with its constants;
        // an exhaustive search must find constants at least as good. (The
        // search here permits candidates where `2^32 % A + C` wraps past `A`,
        // which the paper apparently excluded, so it can even reach 16.)
        let c_ord = select_ordering_constant(PAPER_A);
        let c_eq = select_equality_constant(PAPER_A);
        let searched = Parameters::new(PAPER_A, c_ord, c_eq).expect("valid");
        assert!(searched.symbol_distance() >= 15);
        // The published values themselves achieve the published distance.
        assert_eq!(score_ordering_constant(PAPER_A, PAPER_C_ORDERING), Some(15));
        assert_eq!(score_equality_constant(PAPER_A, PAPER_C_EQUALITY), Some(15));
    }

    #[test]
    fn table_one_rows_cover_all_predicates() {
        let p = Parameters::paper_defaults();
        for pred in Predicate::ALL {
            let row = p.table_one_row(pred);
            assert_eq!(row.predicate, pred);
            assert_ne!(row.true_value, row.false_value);
            assert!(!row.subtraction.is_empty());
        }
        // Spot-check the two rows printed verbatim in the paper.
        let lt = p.table_one_row(Predicate::Ult);
        assert_eq!(lt.subtraction, "xc - yc");
        assert_eq!(lt.true_value, 5_570 + 29_982);
        assert_eq!(lt.false_value, 29_982);
        let gt = p.table_one_row(Predicate::Ugt);
        assert_eq!(gt.subtraction, "yc - xc");
    }

    #[test]
    fn symbols_avoid_trivial_values() {
        let p = Parameters::paper_defaults();
        for pred in Predicate::ALL {
            let s = p.symbols(pred);
            assert_ne!(s.true_value(), 0);
            assert_ne!(s.false_value(), 0);
            assert_ne!(s.true_value(), u32::MAX);
            assert_ne!(s.false_value(), u32::MAX);
        }
    }

    #[test]
    fn selection_works_for_other_constants_too() {
        // A different (weaker) super-A-style constant still yields a usable
        // parameter set through the search.
        for a in [251u32, 4_093, 58_659] {
            let c_ord = select_ordering_constant(a);
            let c_eq = select_equality_constant(a);
            let p = Parameters::new(a, c_ord, c_eq).expect("valid");
            assert!(p.symbol_distance() >= 1);
        }
    }
}
