//! Redundantly encoded comparisons (Section IV of the paper).
//!
//! A conventional comparison of two AN-coded operands collapses all
//! redundancy into a 1-bit CPU flag — the single point of failure identified
//! by Hoffmann et al. during fault simulation. The encoded comparison instead
//! computes the condition *arithmetically* so that the result is one of two
//! redundant symbols `C1`/`C2` whose Hamming distance is at least the
//! security level `D` of the data encoding and the CFI scheme:
//!
//! * **Algorithm 1** (`<, <=, >, >=`): subtract the operands with wrapping
//!   (two's-complement) semantics, add the condition constant `C`, and reduce
//!   modulo `A`. A negative difference intentionally destroys the AN-code
//!   congruence through the unsigned reinterpretation (`2^32 + A*(x-y)`), so
//!   the remainder separates the two cases: `2^32 % A + C` versus `C`
//!   (Table I).
//! * **Algorithm 2** (`==, !=`): combine the `<=` and `>=` conditions by
//!   adding their remainders; equality yields `2*C`, inequality
//!   `2^32 % A + 2*C`.
//!
//! Faults on the operands that invalidate their AN-code produce a condition
//! value that is *neither* symbol, which the CFI linkage then detects.

use crate::code::CodeWord;
use crate::params::Parameters;

/// Comparison predicates supported by the encoded comparison.
///
/// The functional values of the paper's pipeline are unsigned, so the
/// relational predicates carry a `U` prefix mirroring LLVM's `icmp`
/// nomenclature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Predicate {
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Unsigned less-than (`<`).
    Ult,
    /// Unsigned less-or-equal (`<=`).
    Ule,
    /// Unsigned greater-than (`>`).
    Ugt,
    /// Unsigned greater-or-equal (`>=`).
    Uge,
}

impl Predicate {
    /// All predicates, in the order used by the paper's tables.
    pub const ALL: [Predicate; 6] = [
        Predicate::Ugt,
        Predicate::Uge,
        Predicate::Ult,
        Predicate::Ule,
        Predicate::Eq,
        Predicate::Ne,
    ];

    /// Returns `true` for the equality class (`==`, `!=`) which uses
    /// Algorithm 2, and `false` for the ordering class which uses Algorithm 1.
    #[must_use]
    pub fn is_equality_class(self) -> bool {
        matches!(self, Predicate::Eq | Predicate::Ne)
    }

    /// The predicate with operands swapped (`a P b` ⇔ `b P.swapped() a`).
    #[must_use]
    pub fn swapped(self) -> Predicate {
        match self {
            Predicate::Eq => Predicate::Eq,
            Predicate::Ne => Predicate::Ne,
            Predicate::Ult => Predicate::Ugt,
            Predicate::Ule => Predicate::Uge,
            Predicate::Ugt => Predicate::Ult,
            Predicate::Uge => Predicate::Ule,
        }
    }

    /// The logical negation of the predicate (`!(a P b)` ⇔ `a P.negated() b`).
    #[must_use]
    pub fn negated(self) -> Predicate {
        match self {
            Predicate::Eq => Predicate::Ne,
            Predicate::Ne => Predicate::Eq,
            Predicate::Ult => Predicate::Uge,
            Predicate::Ule => Predicate::Ugt,
            Predicate::Ugt => Predicate::Ule,
            Predicate::Uge => Predicate::Ult,
        }
    }

    /// Evaluates the predicate on plain (functional) values — the reference
    /// semantics the encoded comparison must agree with.
    #[must_use]
    pub fn evaluate(self, x: u32, y: u32) -> bool {
        match self {
            Predicate::Eq => x == y,
            Predicate::Ne => x != y,
            Predicate::Ult => x < y,
            Predicate::Ule => x <= y,
            Predicate::Ugt => x > y,
            Predicate::Uge => x >= y,
        }
    }

    /// Human-readable operator symbol.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Predicate::Eq => "==",
            Predicate::Ne => "!=",
            Predicate::Ult => "<",
            Predicate::Ule => "<=",
            Predicate::Ugt => ">",
            Predicate::Uge => ">=",
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The two redundant condition symbols a protected comparison can produce
/// (Table I): one for the *true* outcome, one for the *false* outcome.
///
/// Any other value signals that a fault corrupted the computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConditionSymbols {
    true_value: u32,
    false_value: u32,
}

impl ConditionSymbols {
    /// Creates a symbol pair.
    ///
    /// # Panics
    ///
    /// Panics if the two symbols are identical — such a pair cannot encode a
    /// decision.
    #[must_use]
    pub fn new(true_value: u32, false_value: u32) -> Self {
        assert_ne!(
            true_value, false_value,
            "condition symbols must be distinct"
        );
        ConditionSymbols {
            true_value,
            false_value,
        }
    }

    /// Symbol produced when the comparison holds.
    #[must_use]
    pub fn true_value(&self) -> u32 {
        self.true_value
    }

    /// Symbol produced when the comparison does not hold.
    #[must_use]
    pub fn false_value(&self) -> u32 {
        self.false_value
    }

    /// Hamming distance between the two symbols — the security level `D` of
    /// the protected branch.
    #[must_use]
    pub fn hamming_distance(&self) -> u32 {
        (self.true_value ^ self.false_value).count_ones()
    }

    /// Classifies a raw condition value.
    #[must_use]
    pub fn classify(&self, value: u32) -> ConditionOutcome {
        if value == self.true_value {
            ConditionOutcome::True
        } else if value == self.false_value {
            ConditionOutcome::False
        } else {
            ConditionOutcome::Invalid
        }
    }
}

/// Outcome of classifying a raw condition value against a symbol pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConditionOutcome {
    /// The value equals the *true* symbol.
    True,
    /// The value equals the *false* symbol.
    False,
    /// The value is neither symbol — a fault corrupted the computation.
    Invalid,
}

impl ConditionOutcome {
    /// `true` if the value was one of the two valid symbols.
    #[must_use]
    pub fn is_valid(self) -> bool {
        !matches!(self, ConditionOutcome::Invalid)
    }
}

/// Algorithm 1: AN-encoded ordering comparison kernel.
///
/// Computes `cond = ((unsigned)(lhs - rhs) + C) mod A`. The caller selects
/// which operand order and which expected symbols realise the desired
/// predicate (Table I); [`encoded_compare`] does this automatically.
#[must_use]
pub fn ordering_kernel(a: u32, c: u32, lhs: CodeWord, rhs: CodeWord) -> u32 {
    let diff = lhs.raw().wrapping_sub(rhs.raw()).wrapping_add(c);
    diff % a
}

/// Algorithm 2: AN-encoded equality comparison kernel.
///
/// Combines the `<=` and `>=` remainders by addition: equality yields `2*C`,
/// inequality `2^32 mod A + 2*C`.
#[must_use]
pub fn equality_kernel(a: u32, c: u32, lhs: CodeWord, rhs: CodeWord) -> u32 {
    let rem1 = lhs.raw().wrapping_sub(rhs.raw()).wrapping_add(c) % a;
    let rem2 = rhs.raw().wrapping_sub(lhs.raw()).wrapping_add(c) % a;
    rem1.wrapping_add(rem2)
}

/// Computes the encoded comparison `xc P yc` and returns the raw condition
/// value (one of the two symbols of [`Parameters::symbols`] when no fault
/// occurred).
///
/// This is the software reference implementation; the code generator emits
/// the equivalent `SUB/ADD/UDIV/MLS` sequence (Table II).
#[must_use]
pub fn encoded_compare(
    params: &Parameters,
    predicate: Predicate,
    xc: CodeWord,
    yc: CodeWord,
) -> u32 {
    let a = params.code().constant();
    match predicate {
        Predicate::Eq | Predicate::Ne => equality_kernel(a, params.equality_constant(), xc, yc),
        // Table I: the subtraction order selects the predicate; the symbol
        // assignment (true/false) is handled by `Parameters::symbols`.
        Predicate::Ult | Predicate::Uge => ordering_kernel(a, params.ordering_constant(), xc, yc),
        Predicate::Ugt | Predicate::Ule => ordering_kernel(a, params.ordering_constant(), yc, xc),
    }
}

/// Convenience wrapper: runs the encoded comparison and classifies the result
/// against the expected symbols.
#[must_use]
pub fn encoded_compare_outcome(
    params: &Parameters,
    predicate: Predicate,
    xc: CodeWord,
    yc: CodeWord,
) -> ConditionOutcome {
    let value = encoded_compare(params, predicate, xc, yc);
    params.symbols(predicate).classify(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Parameters;

    fn params() -> Parameters {
        Parameters::paper_defaults()
    }

    #[test]
    fn predicate_reference_semantics() {
        assert!(Predicate::Eq.evaluate(3, 3));
        assert!(!Predicate::Eq.evaluate(3, 4));
        assert!(Predicate::Ne.evaluate(3, 4));
        assert!(Predicate::Ult.evaluate(3, 4));
        assert!(!Predicate::Ult.evaluate(4, 4));
        assert!(Predicate::Ule.evaluate(4, 4));
        assert!(Predicate::Ugt.evaluate(5, 4));
        assert!(Predicate::Uge.evaluate(4, 4));
    }

    #[test]
    fn predicate_negation_and_swap_are_involutions() {
        for p in Predicate::ALL {
            assert_eq!(p.negated().negated(), p);
            assert_eq!(p.swapped().swapped(), p);
            for (x, y) in [(1u32, 2u32), (2, 1), (7, 7)] {
                assert_eq!(p.evaluate(x, y), !p.negated().evaluate(x, y));
                assert_eq!(p.evaluate(x, y), p.swapped().evaluate(y, x));
            }
        }
    }

    #[test]
    fn table_one_symbol_values() {
        // Table I with A = 63877, C = 29982: true/false condition values for
        // the ordering predicates; 2^32 mod A = 5570.
        let p = params();
        let wrap = p.wraparound_residue();
        assert_eq!(wrap, 5570);
        let lt = p.symbols(Predicate::Ult);
        assert_eq!(lt.true_value(), 5570 + 29982);
        assert_eq!(lt.false_value(), 29982);
        let ge = p.symbols(Predicate::Uge);
        assert_eq!(ge.true_value(), 29982);
        assert_eq!(ge.false_value(), 5570 + 29982);
        // Equality class with C = 14991: equal -> 2C, not equal -> wrap + 2C.
        let eq = p.symbols(Predicate::Eq);
        assert_eq!(eq.true_value(), 2 * 14991);
        assert_eq!(eq.false_value(), 5570 + 2 * 14991);
        let ne = p.symbols(Predicate::Ne);
        assert_eq!(ne.true_value(), 5570 + 2 * 14991);
        assert_eq!(ne.false_value(), 2 * 14991);
    }

    #[test]
    fn symbols_reach_fifteen_bit_distance() {
        // "With both constants, we reach a maximum Hamming distance D of
        // 15-bit between the comparison values."
        let p = params();
        for pred in Predicate::ALL {
            assert_eq!(p.symbols(pred).hamming_distance(), 15, "{pred}");
        }
    }

    #[test]
    fn encoded_compare_agrees_with_reference_on_a_grid() {
        let p = params();
        let code = p.code();
        let interesting = [0u32, 1, 2, 3, 41, 255, 256, 1000, 32_767, 63_876];
        for &x in &interesting {
            for &y in &interesting {
                let xc = code.encode(x).expect("in range");
                let yc = code.encode(y).expect("in range");
                for pred in Predicate::ALL {
                    let outcome = encoded_compare_outcome(&p, pred, xc, yc);
                    let expected = if pred.evaluate(x, y) {
                        ConditionOutcome::True
                    } else {
                        ConditionOutcome::False
                    };
                    assert_eq!(outcome, expected, "{x} {pred} {y}");
                }
            }
        }
    }

    #[test]
    fn faulted_operand_never_flips_the_decision() {
        // The security property of the encoded comparison: a fault on an
        // operand can never produce the *wrong valid* symbol. For the
        // ordering class (Algorithm 1) the fault residue survives into the
        // remainder, so the fault is detected outright. For the equality
        // class (Algorithm 2) the two remainders cancel the residue when the
        // operands are unequal, so the fault may be *masked* (the correct
        // "not equal" symbol is produced) — but the decision still cannot be
        // flipped.
        let p = params();
        let code = p.code();
        let xc = code.encode(100).expect("in range");
        let yc = code.encode(200).expect("in range");
        for bit in 0..32 {
            let fx = xc.with_bit_flipped(bit);
            for pred in Predicate::ALL {
                let correct = if pred.evaluate(100, 200) {
                    ConditionOutcome::True
                } else {
                    ConditionOutcome::False
                };
                let wrong = match correct {
                    ConditionOutcome::True => ConditionOutcome::False,
                    _ => ConditionOutcome::True,
                };
                let outcome = encoded_compare_outcome(&p, pred, fx, yc);
                assert_ne!(outcome, wrong, "bit {bit}, predicate {pred}");
                if !pred.is_equality_class() {
                    assert_eq!(
                        outcome,
                        ConditionOutcome::Invalid,
                        "ordering-class faults must be detected (bit {bit}, {pred})"
                    );
                }
            }
        }
    }

    #[test]
    fn faulted_condition_value_needs_many_bits_to_reach_other_symbol() {
        let p = params();
        let s = p.symbols(Predicate::Ult);
        assert_eq!(
            (s.true_value() ^ s.false_value()).count_ones(),
            15,
            "flipping the decision requires 15 precise bit flips"
        );
    }

    #[test]
    fn classification_rejects_all_zero_and_all_one() {
        // The parameter selection must avoid the all-zero / all-one condition
        // values that are easy to force in hardware.
        let p = params();
        for pred in Predicate::ALL {
            let s = p.symbols(pred);
            assert_eq!(s.classify(0), ConditionOutcome::Invalid);
            assert_eq!(s.classify(u32::MAX), ConditionOutcome::Invalid);
        }
    }

    #[test]
    fn kernels_are_branch_free_functions_of_inputs() {
        // Same inputs -> same outputs (pure), different order -> the swapped
        // kernel for ordering.
        let p = params();
        let code = p.code();
        let a = code.constant();
        let x = code.encode(10).expect("in range");
        let y = code.encode(20).expect("in range");
        assert_eq!(
            ordering_kernel(a, p.ordering_constant(), x, y),
            ordering_kernel(a, p.ordering_constant(), x, y)
        );
        assert_eq!(
            equality_kernel(a, p.equality_constant(), x, y),
            equality_kernel(a, p.equality_constant(), y, x)
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn identical_symbols_are_rejected() {
        let _ = ConditionSymbols::new(5, 5);
    }
}
