//! The AN-code itself: encoding, decoding, residue checks and closed
//! arithmetic operations.

use crate::error::AnCodeError;

/// A 32-bit word that is (claimed to be) a valid AN-code word.
///
/// `CodeWord` is a thin newtype over `u32`; it deliberately does **not**
/// guarantee validity — faults can corrupt code words, and the whole point of
/// the scheme is that corrupted words are *detected later* by residue checks
/// or by the encoded comparison. Use [`AnCode::check`] to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CodeWord(pub u32);

impl CodeWord {
    /// Returns the raw 32-bit representation of the code word.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Flips the given bit (0-based, 0..32) of the code word.
    ///
    /// This models a single-bit fault on the register or memory cell holding
    /// the word and is used by the fault-injection campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    #[must_use]
    pub fn with_bit_flipped(self, bit: u32) -> CodeWord {
        assert!(bit < 32, "bit index {bit} out of range for a 32-bit word");
        CodeWord(self.0 ^ (1u32 << bit))
    }

    /// XORs an arbitrary fault mask into the word (multi-bit fault model).
    #[must_use]
    pub fn with_fault_mask(self, mask: u32) -> CodeWord {
        CodeWord(self.0 ^ mask)
    }
}

impl From<CodeWord> for u32 {
    fn from(word: CodeWord) -> u32 {
        word.0
    }
}

impl std::fmt::Display for CodeWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl std::fmt::LowerHex for CodeWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::UpperHex for CodeWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::UpperHex::fmt(&self.0, f)
    }
}

impl std::fmt::Binary for CodeWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.0, f)
    }
}

/// An arithmetic AN-code over 32-bit machine words.
///
/// Code words have the form `nc = A * n` where `A` is the encoding constant
/// and `n` the functional value. All multiples of `A` are valid code words;
/// the congruence `nc mod A == 0` validates a word. The code is closed under
/// addition and subtraction (Equation 1 of the paper); multiplication needs a
/// correction step.
///
/// The functional range is limited so that every reachable code word (and the
/// intermediate values of the encoded comparison) still fits into 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnCode {
    a: u32,
    functional_max_exclusive: u32,
}

impl AnCode {
    /// Creates an AN-code with encoding constant `a` and the largest
    /// functional range that both stays below `a` (required to preserve the
    /// error-detection capability) and keeps code words within 32 bits.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::InvalidConstant`] if `a < 2`.
    pub fn new(a: u32) -> Result<Self, AnCodeError> {
        if a < 2 {
            return Err(AnCodeError::InvalidConstant {
                a,
                reason: "the encoding constant must be at least 2",
            });
        }
        let by_width = u32::MAX / a + 1; // largest n with a*n <= u32::MAX, +1 for exclusive bound
        let functional_max_exclusive = by_width.min(a);
        Ok(AnCode {
            a,
            functional_max_exclusive,
        })
    }

    /// Creates an AN-code whose functional range is additionally capped at
    /// `2^bits` functional values (e.g. `bits = 16` for the paper's setup).
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::InvalidConstant`] if `a < 2` or if `bits > 32`.
    pub fn with_functional_bits(a: u32, bits: u32) -> Result<Self, AnCodeError> {
        if bits > 32 {
            return Err(AnCodeError::InvalidConstant {
                a,
                reason: "functional width cannot exceed 32 bits",
            });
        }
        let base = Self::new(a)?;
        let cap = if bits == 32 { u32::MAX } else { 1u32 << bits };
        Ok(AnCode {
            a,
            functional_max_exclusive: base.functional_max_exclusive.min(cap),
        })
    }

    /// The encoding constant `A`.
    #[must_use]
    pub fn constant(&self) -> u32 {
        self.a
    }

    /// Exclusive upper bound of the functional range.
    #[must_use]
    pub fn functional_max_exclusive(&self) -> u32 {
        self.functional_max_exclusive
    }

    /// Encodes a functional value into a code word (`nc = A * n`).
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::ValueOutOfRange`] if `value` is outside the
    /// functional range of the code.
    pub fn encode(&self, value: u32) -> Result<CodeWord, AnCodeError> {
        if value >= self.functional_max_exclusive {
            return Err(AnCodeError::ValueOutOfRange {
                value,
                max_exclusive: self.functional_max_exclusive,
            });
        }
        Ok(CodeWord(self.a * value))
    }

    /// Checks the AN-code congruence `0 == nc mod A`.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::InvalidCodeWord`] with the residue if the check
    /// fails.
    pub fn check(&self, word: CodeWord) -> Result<(), AnCodeError> {
        let residue = word.0 % self.a;
        if residue == 0 {
            Ok(())
        } else {
            Err(AnCodeError::InvalidCodeWord {
                word: word.0,
                residue,
            })
        }
    }

    /// Returns `true` if the word satisfies the AN-code congruence.
    #[must_use]
    pub fn is_valid(&self, word: CodeWord) -> bool {
        word.0.is_multiple_of(self.a)
    }

    /// Decodes a code word back to its functional value, validating it first.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::InvalidCodeWord`] if the congruence fails.
    pub fn decode(&self, word: CodeWord) -> Result<u32, AnCodeError> {
        self.check(word)?;
        Ok(word.0 / self.a)
    }

    /// Decodes without validating (used to model the *unprotected* path in
    /// baselines and in fault experiments).
    #[must_use]
    pub fn decode_unchecked(&self, word: CodeWord) -> u32 {
        word.0 / self.a
    }

    /// Encoded addition: `zc = xc + yc` encodes `x + y` (Equation 1).
    ///
    /// The addition is performed with wrapping semantics, exactly as the
    /// 32-bit hardware would; validity of the result is only guaranteed if
    /// `x + y` stays inside the functional range.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::FunctionalOverflow`] if the functional sum of
    /// two *valid* operands would leave the functional range. Invalid
    /// (faulted) operands are propagated without an error so that faults stay
    /// detectable downstream.
    pub fn add(&self, xc: CodeWord, yc: CodeWord) -> Result<CodeWord, AnCodeError> {
        if self.is_valid(xc) && self.is_valid(yc) {
            let x = self.decode_unchecked(xc) as u64;
            let y = self.decode_unchecked(yc) as u64;
            if x + y >= u64::from(self.functional_max_exclusive) {
                return Err(AnCodeError::FunctionalOverflow { operation: "add" });
            }
        }
        Ok(CodeWord(xc.0.wrapping_add(yc.0)))
    }

    /// Encoded subtraction: `zc = xc - yc` encodes `x - y` in two's-complement
    /// (signed) representation. The result of subtracting a larger from a
    /// smaller value is the wrapped representation `2^32 + A*(x - y)` that the
    /// encoded comparison exploits (Equation 4).
    #[must_use]
    pub fn sub(&self, xc: CodeWord, yc: CodeWord) -> CodeWord {
        CodeWord(xc.0.wrapping_sub(yc.0))
    }

    /// Encoded multiplication by an (unencoded) functional constant:
    /// `zc = xc * k` encodes `x * k` and stays a valid code word.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::FunctionalOverflow`] if the functional product
    /// of a *valid* operand would leave the functional range.
    pub fn mul_const(&self, xc: CodeWord, k: u32) -> Result<CodeWord, AnCodeError> {
        if self.is_valid(xc) {
            let x = self.decode_unchecked(xc) as u64;
            if x * u64::from(k) >= u64::from(self.functional_max_exclusive) {
                return Err(AnCodeError::FunctionalOverflow { operation: "mul" });
            }
        }
        Ok(CodeWord(xc.0.wrapping_mul(k)))
    }

    /// Encoded multiplication of two code words with the correction step
    /// `zc = (xc * yc) / A`, computed in 64-bit intermediate precision as the
    /// AN-encoding compilers do.
    ///
    /// # Errors
    ///
    /// Returns [`AnCodeError::FunctionalOverflow`] if the functional product
    /// of two *valid* operands would leave the functional range.
    pub fn mul(&self, xc: CodeWord, yc: CodeWord) -> Result<CodeWord, AnCodeError> {
        if self.is_valid(xc) && self.is_valid(yc) {
            let x = self.decode_unchecked(xc) as u64;
            let y = self.decode_unchecked(yc) as u64;
            if x * y >= u64::from(self.functional_max_exclusive) {
                return Err(AnCodeError::FunctionalOverflow { operation: "mul" });
            }
        }
        let wide = u64::from(xc.0).wrapping_mul(u64::from(yc.0)) / u64::from(self.a);
        Ok(CodeWord(wide as u32))
    }

    /// The residue `word mod A` (0 for valid code words). Exposed because the
    /// security evaluation inspects residues of faulted intermediates.
    #[must_use]
    pub fn residue(&self, word: CodeWord) -> u32 {
        word.0 % self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u32 = 63877;

    fn code() -> AnCode {
        AnCode::with_functional_bits(A, 16).expect("valid code")
    }

    #[test]
    fn new_rejects_degenerate_constants() {
        assert!(AnCode::new(0).is_err());
        assert!(AnCode::new(1).is_err());
        assert!(AnCode::new(2).is_ok());
    }

    #[test]
    fn functional_range_is_capped_by_constant_and_width() {
        let c = AnCode::new(3).expect("valid");
        // With A = 3 the limiting factor is A itself (n < A).
        assert_eq!(c.functional_max_exclusive(), 3);

        let c = AnCode::new(A).expect("valid");
        assert_eq!(c.functional_max_exclusive(), A.min(u32::MAX / A + 1));

        let c = AnCode::with_functional_bits(A, 8).expect("valid");
        assert_eq!(c.functional_max_exclusive(), 256);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = code();
        for v in [
            0u32,
            1,
            2,
            41,
            255,
            1000,
            65_535.min(c.functional_max_exclusive() - 1),
        ] {
            let w = c.encode(v).expect("in range");
            assert_eq!(w.raw(), A * v);
            assert!(c.is_valid(w));
            assert_eq!(c.decode(w).expect("valid"), v);
        }
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let c = code();
        let max = c.functional_max_exclusive();
        assert!(matches!(
            c.encode(max),
            Err(AnCodeError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn check_detects_single_bit_flips() {
        let c = code();
        let w = c.encode(1234).expect("in range");
        for bit in 0..32 {
            let faulted = w.with_bit_flipped(bit);
            assert!(
                c.check(faulted).is_err(),
                "single-bit flip at bit {bit} must be detected"
            );
        }
    }

    #[test]
    fn addition_is_closed() {
        let c = code();
        let x = c.encode(100).expect("in range");
        let y = c.encode(4000).expect("in range");
        let z = c.add(x, y).expect("no overflow");
        assert_eq!(c.decode(z).expect("valid"), 4100);
    }

    #[test]
    fn addition_reports_functional_overflow() {
        let c = code();
        let max = c.functional_max_exclusive();
        let x = c.encode(max - 1).expect("in range");
        let y = c.encode(2).expect("in range");
        assert!(matches!(
            c.add(x, y),
            Err(AnCodeError::FunctionalOverflow { .. })
        ));
    }

    #[test]
    fn addition_propagates_faulted_operands() {
        let c = code();
        let x = c.encode(100).expect("in range").with_bit_flipped(3);
        let y = c.encode(4000).expect("in range");
        let z = c.add(x, y).expect("faulted operands pass through");
        assert!(c.check(z).is_err(), "fault must stay detectable");
    }

    #[test]
    fn subtraction_matches_signed_semantics() {
        let c = code();
        let x = c.encode(10).expect("in range");
        let y = c.encode(3).expect("in range");
        assert_eq!(c.decode(c.sub(x, y)).expect("valid"), 7);

        // Negative difference: the wrapped representation is 2^32 + A*(x-y).
        let d = c.sub(y, x);
        let expected = (1u64 << 32) - u64::from(A) * 7;
        assert_eq!(u64::from(d.raw()), expected);
    }

    #[test]
    fn mul_const_scales_functional_value() {
        let c = code();
        let x = c.encode(21).expect("in range");
        let z = c.mul_const(x, 3).expect("no overflow");
        assert_eq!(c.decode(z).expect("valid"), 63);
    }

    #[test]
    fn mul_applies_correction() {
        let c = code();
        let x = c.encode(12).expect("in range");
        let y = c.encode(11).expect("in range");
        let z = c.mul(x, y).expect("no overflow");
        assert_eq!(c.decode(z).expect("valid"), 132);
    }

    #[test]
    fn mul_detects_overflow() {
        let c = code();
        let x = c.encode(60_000).expect("in range");
        let y = c.encode(2).expect("in range");
        assert!(matches!(
            c.mul(x, y),
            Err(AnCodeError::FunctionalOverflow { .. })
        ));
    }

    #[test]
    fn code_word_formatting() {
        let w = CodeWord(0xABCD);
        assert_eq!(format!("{w}"), "0x0000abcd");
        assert_eq!(format!("{w:x}"), "abcd");
        assert_eq!(format!("{w:X}"), "ABCD");
        assert_eq!(format!("{w:b}"), "1010101111001101");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_flip_panics_on_out_of_range_bit() {
        let _ = CodeWord(0).with_bit_flipped(32);
    }
}
