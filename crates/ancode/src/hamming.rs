//! Hamming-distance analysis of AN-codes.
//!
//! The minimum Hamming distance between code words gives a quantitative
//! measure of how strong a chosen encoding constant `A` is (Section II-B of
//! the paper): a code with minimum distance `d` detects all faults flipping
//! up to `d - 1` bits of a single word. The paper's constant `A = 63877` (a
//! "super A" from Hoffmann et al.) has a minimum distance of 6 for 16-bit
//! functional values, so up to 5-bit errors in a single word are detected.

use crate::code::AnCode;

/// Hamming distance between two 32-bit words.
#[must_use]
pub fn distance(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

/// Hamming weight (number of set bits) of a 32-bit word.
#[must_use]
pub fn weight(a: u32) -> u32 {
    a.count_ones()
}

/// Exact minimum Hamming distance of the code, computed by exhaustive
/// pairwise comparison of all code words in the functional range.
///
/// The cost is quadratic in the functional range; use
/// [`min_distance_sampled`] or [`min_distance_upper_bound`] for large codes
/// (e.g. the full 16-bit range of the paper's parameters). For ranges up to a
/// few thousand functional values this completes quickly and is used by the
/// tests.
#[must_use]
pub fn min_distance_exhaustive(code: &AnCode, functional_limit: u32) -> u32 {
    let n = functional_limit.min(code.functional_max_exclusive());
    let a = code.constant();
    let mut best = 32;
    for i in 0..n {
        let wi = a.wrapping_mul(i);
        for j in (i + 1)..n {
            let wj = a.wrapping_mul(j);
            let d = distance(wi, wj);
            if d < best {
                best = d;
                if best == 1 {
                    return best;
                }
            }
        }
    }
    best
}

/// Upper bound on the minimum Hamming distance: the minimum over all nonzero
/// functional differences `d` of the weight of the code word `A * d`.
///
/// Every pair `(A*i, A*j)` with `j = i + d` and `i` such that the addition
/// does not produce carries realises a distance equal to `weight(A * d)`
/// (in particular the pair `(0, A*d)` always does), so this is a true upper
/// bound and in practice a tight estimate; it is linear in the functional
/// range instead of quadratic.
#[must_use]
pub fn min_distance_upper_bound(code: &AnCode, functional_limit: u32) -> u32 {
    let n = functional_limit.min(code.functional_max_exclusive());
    let a = code.constant();
    let mut best = 32;
    for d in 1..n {
        best = best.min(weight(a.wrapping_mul(d)));
        if best == 1 {
            break;
        }
    }
    best
}

/// Statistical estimate of the minimum Hamming distance by comparing
/// `samples` random pairs of code words drawn from a deterministic
/// pseudo-random sequence (xorshift seeded with `seed`).
///
/// This never reports a distance *lower* than the true minimum of the pairs
/// it inspects, so it is an upper bound on the code's minimum distance that
/// converges towards it as `samples` grows.
#[must_use]
pub fn min_distance_sampled(code: &AnCode, functional_limit: u32, samples: u32, seed: u64) -> u32 {
    let n = u64::from(functional_limit.min(code.functional_max_exclusive()));
    if n < 2 {
        return 32;
    }
    let a = code.constant();
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut best = 32;
    for _ in 0..samples {
        let i = (next() % n) as u32;
        let j = (next() % n) as u32;
        if i == j {
            continue;
        }
        let d = distance(a.wrapping_mul(i), a.wrapping_mul(j));
        if d < best {
            best = d;
        }
    }
    best
}

/// Number of detectable bit flips in a single word: `min_distance - 1`.
#[must_use]
pub fn detectable_bits(min_distance: u32) -> u32 {
    min_distance.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::AnCode;

    #[test]
    fn distance_and_weight_basics() {
        assert_eq!(distance(0, 0), 0);
        assert_eq!(distance(0b1010, 0b0101), 4);
        assert_eq!(distance(u32::MAX, 0), 32);
        assert_eq!(weight(0), 0);
        assert_eq!(weight(0b1011), 3);
    }

    #[test]
    fn exhaustive_matches_upper_bound_on_small_codes() {
        // For small functional ranges the exhaustive minimum and the
        // difference-weight bound frequently coincide; at minimum the bound
        // must never be smaller than the true value is larger... i.e. the
        // bound is an upper bound of the true minimum.
        for a in [3u32, 5, 7, 11, 21, 43, 59, 113] {
            let code = AnCode::new(a).expect("valid");
            let limit = code.functional_max_exclusive().min(64);
            let exact = min_distance_exhaustive(&code, limit);
            let bound = min_distance_upper_bound(&code, limit);
            assert!(
                exact <= bound,
                "A = {a}: exact {exact} must not exceed the upper bound {bound}"
            );
        }
    }

    #[test]
    fn paper_constant_has_min_distance_six() {
        // A = 63877 is the paper's "super A": minimum Hamming distance 6 for
        // 16-bit functional values. The exhaustive check over the full range
        // is too expensive for a unit test, so combine the linear
        // difference-weight bound (which equals 6 here) with a sampled check
        // that no pair below distance 6 exists among two million random pairs.
        let code = AnCode::with_functional_bits(63877, 16).expect("valid");
        let limit = code.functional_max_exclusive();
        assert_eq!(min_distance_upper_bound(&code, limit), 6);
        let sampled = min_distance_sampled(&code, limit, 2_000_000, 0xDEADBEEF);
        assert!(
            sampled >= 6,
            "sampled minimum distance {sampled} contradicts the published value 6"
        );
    }

    #[test]
    fn weak_constants_are_identified() {
        // A power of two is a terrible AN constant: distance 1 pairs exist
        // (multiplying by a power of two just shifts the value).
        let code = AnCode::new(64).expect("valid");
        assert_eq!(min_distance_exhaustive(&code, 64), 1);
    }

    #[test]
    fn detectable_bits_is_distance_minus_one() {
        assert_eq!(detectable_bits(6), 5);
        assert_eq!(detectable_bits(1), 0);
        assert_eq!(detectable_bits(0), 0);
    }

    #[test]
    fn sampled_estimator_is_deterministic_for_a_seed() {
        let code = AnCode::with_functional_bits(63877, 16).expect("valid");
        let a = min_distance_sampled(&code, 1 << 16, 10_000, 7);
        let b = min_distance_sampled(&code, 1 << 16, 10_000, 7);
        assert_eq!(a, b);
    }
}
