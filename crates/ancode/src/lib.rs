//! AN-code arithmetic and redundantly encoded comparisons.
//!
//! This crate implements the data-encoding substrate of *Securing Conditional
//! Branches in the Presence of Fault Attacks* (Schilling, Werner, Mangard —
//! DATE 2018):
//!
//! * [`AnCode`] — an arithmetic AN-code with encoding constant `A`
//!   (code words are `nc = A * n`), including encoding, decoding, residue
//!   checks and the arithmetic operations that are closed under the code
//!   (addition, subtraction, multiplication with correction).
//! * [`compare`] — the paper's novel *encoded comparison* operations
//!   (Algorithm 1 for `<, <=, >, >=`, Algorithm 2 for `==, !=`): they compare
//!   two code words and produce a *redundant* condition symbol instead of an
//!   unprotected 1-bit flag, preserving the fault-detection capability of the
//!   encoding throughout the whole conditional branch (Table I of the paper).
//! * [`params`] — parameter selection: the paper's constants
//!   (`A = 63877`, `C = 29982` / `14991`) and search routines that recompute
//!   them (maximising the Hamming distance between the two condition symbols).
//! * [`hamming`] — Hamming-distance analysis of AN-codes (minimum code
//!   distance, symbol distance) used both by parameter selection and by the
//!   security evaluation (Section VI).
//!
//! # Quick start
//!
//! ```
//! use secbranch_ancode::{Predicate, Parameters};
//!
//! # fn main() -> Result<(), secbranch_ancode::AnCodeError> {
//! let params = Parameters::paper_defaults();
//! let code = params.code();
//!
//! // Encode two functional values.
//! let x = code.encode(41)?;
//! let y = code.encode(1000)?;
//!
//! // Redundantly encoded `<` comparison (Algorithm 1).
//! let symbols = params.symbols(Predicate::Ult);
//! let cond = secbranch_ancode::compare::encoded_compare(&params, Predicate::Ult, x, y);
//! assert_eq!(cond, symbols.true_value());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
pub mod compare;
mod error;
pub mod hamming;
pub mod params;

pub use code::{AnCode, CodeWord};
pub use compare::{encoded_compare, ConditionSymbols, Predicate};
pub use error::AnCodeError;
pub use params::Parameters;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnCode>();
        assert_send_sync::<CodeWord>();
        assert_send_sync::<Parameters>();
        assert_send_sync::<ConditionSymbols>();
        assert_send_sync::<Predicate>();
        assert_send_sync::<AnCodeError>();
    }
}
