//! The process-wide monotonic clock all span timestamps are taken from.

use std::sync::OnceLock;
use std::time::Instant;

/// The shared origin. Initialised on first use; every later reading is
/// relative to it, so timestamps from different threads compare directly.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Microseconds elapsed since the first call in this process.
///
/// Monotonic (backed by [`Instant`]) and shared across threads: two calls
/// observe the same origin, so `a < b` means a happened before b was read.
/// The first call anywhere fixes the origin at "now" and returns a small
/// number.
#[must_use]
pub fn monotonic_micros() -> u64 {
    ORIGIN.get_or_init(Instant::now).elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
        let from_thread = std::thread::spawn(monotonic_micros)
            .join()
            .expect("thread runs");
        assert!(from_thread >= a, "one origin across threads");
    }
}
