//! Span-based tracing: RAII guards, thread-local buffers, a session-level
//! sink, and a Chrome trace-event exporter.
//!
//! # Fast path
//!
//! Tracing is *globally* off until a [`TraceSink`] is installed
//! ([`install_sink`]). While off, [`span`] checks one relaxed atomic and
//! returns an inert guard: no clock read, no allocation, no lock, and
//! [`span_with`] never evaluates its detail closure. The instrumented hot
//! paths therefore cost one predictable branch when nobody is watching.
//!
//! # Buffering
//!
//! While on, each thread accumulates finished spans in a thread-local
//! buffer (a bounded ring: filling it drains to the sink early) that is
//! flushed to the installed sink when the thread exits — scoped executor
//! workers flush before their scope returns — or when [`flush_thread`] is
//! called on the thread. The per-event cost is two clock reads and a `Vec`
//! push; the sink's lock is only taken on drains.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::monotonic_micros;

/// Finished spans a thread buffers locally before draining to the sink.
/// Small enough to bound memory per thread, large enough that drains (the
/// only locking operation) are rare.
const BUFFER_CAPACITY: usize = 4096;

/// Whether a sink is installed. The only thing the disabled fast path
/// reads.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span-id source (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic thread-id source for trace attribution (the OS thread id is
/// not portably an integer).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// The installed session-level sink, if any.
static SINK: Mutex<Option<Arc<TraceSink>>> = Mutex::new(None);

/// One finished span: a named interval on the shared monotonic timeline,
/// linked to its enclosing span and attributed to a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique id of this span (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 at top level.
    pub parent: u64,
    /// The phase label (static by design: labels name instrumented phases,
    /// not per-occurrence data — that goes in `detail`).
    pub label: &'static str,
    /// Free-form per-occurrence context (cell key, shard index, …); empty
    /// when the span was opened without one.
    pub detail: String,
    /// Start, microseconds on the [`monotonic_micros`] timeline.
    pub start_micros: u64,
    /// End, microseconds on the same timeline (`>= start_micros`).
    pub end_micros: u64,
    /// Trace-local id of the recording thread.
    pub thread: u64,
}

/// The session-level collector finished spans drain into.
///
/// Create one, [`install_sink`] it for the duration of a run, then
/// [`uninstall_sink`], [`flush_thread`] the calling thread, and
/// [`TraceSink::take_events`] what was recorded.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl TraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Takes every event drained so far, leaving the sink empty.
    #[must_use]
    pub fn take_events(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events.lock().expect("trace sink poisoned"))
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// `true` when no events have been drained into the sink.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn absorb(&self, batch: &mut Vec<SpanEvent>) {
        self.events
            .lock()
            .expect("trace sink poisoned")
            .append(batch);
    }
}

/// Installs `sink` as the process-wide trace sink and enables tracing.
/// Replaces any previously installed sink (events buffered on threads drain
/// to whichever sink is installed when they flush).
pub fn install_sink(sink: &Arc<TraceSink>) {
    *SINK.lock().expect("sink registry poisoned") = Some(Arc::clone(sink));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables tracing and drops the installed sink reference. Spans already
/// buffered on live threads are discarded at their next flush.
pub fn uninstall_sink() {
    ENABLED.store(false, Ordering::Relaxed);
    *SINK.lock().expect("sink registry poisoned") = None;
}

/// `true` while a sink is installed. The no-op guarantee: when this is
/// `false`, [`span`]/[`span_with`] do nothing measurable.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// This thread's finished-span buffer; drains to the sink when full and
    /// on thread exit (the `Drop` of [`ThreadBuffer`]).
    static BUFFER: RefCell<ThreadBuffer> =
        const { RefCell::new(ThreadBuffer { events: Vec::new() }) };
    /// The stack of open span ids on this thread (parent linkage).
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's trace-local id, assigned on first span.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

struct ThreadBuffer {
    events: Vec<SpanEvent>,
}

impl ThreadBuffer {
    fn push(&mut self, event: SpanEvent) {
        self.events.push(event);
        if self.events.len() >= BUFFER_CAPACITY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let sink = SINK.lock().expect("sink registry poisoned").clone();
        match sink {
            Some(sink) => sink.absorb(&mut self.events),
            // No sink: the events can never be observed; drop them so a
            // disabled process does not accumulate memory.
            None => self.events.clear(),
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// Drains the calling thread's span buffer into the installed sink.
///
/// Threads flush automatically on exit; long-lived threads (the main
/// thread, pool workers) call this before the sink is read so their tail
/// of events is not missed.
pub fn flush_thread() {
    BUFFER.with(|buffer| buffer.borrow_mut().flush());
}

/// An RAII span guard: records the interval from creation to drop under its
/// label. Inert (and free) while no sink is installed.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// An inert guard that records nothing — for call sites that sample
    /// (e.g. "first occurrence per shard") and need a same-typed no-op for
    /// the unsampled arm.
    pub fn disabled() -> Span {
        Span(None)
    }
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: u64,
    label: &'static str,
    detail: String,
    start_micros: u64,
}

/// Opens a span named `label`. See [`Span`].
pub fn span(label: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    open(label, String::new())
}

/// Opens a span named `label` with a lazily built detail string. The
/// closure is only evaluated while tracing is enabled, so callers may
/// format cell keys and shard indices without a disabled-path cost.
pub fn span_with(label: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span(None);
    }
    open(label, detail())
}

fn open(label: &'static str, detail: String) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN_SPANS.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Span(Some(ActiveSpan {
        id,
        parent,
        label,
        detail,
        start_micros: monotonic_micros(),
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let end_micros = monotonic_micros();
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop this span; guards drop in LIFO order on a thread, but be
            // defensive about a guard outliving an intervening flush.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        let event = SpanEvent {
            id: active.id,
            parent: active.parent,
            label: active.label,
            detail: active.detail,
            start_micros: active.start_micros,
            end_micros,
            thread: thread_id(),
        };
        BUFFER.with(|buffer| buffer.borrow_mut().push(event));
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as Chrome trace-event JSON (the object form:
/// `{"traceEvents":[...]}`), loadable in `chrome://tracing` and Perfetto.
///
/// Every span becomes one complete (`"ph":"X"`) event with microsecond
/// `ts`/`dur`; span id and parent id ride in `args` so the hierarchy
/// survives even though the viewer mainly nests by time. A thread-name
/// metadata (`"ph":"M"`) event is emitted per thread seen.
#[must_use]
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for thread in threads {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{thread},\
             \"args\":{{\"name\":\"obs-thread-{thread}\"}}}}"
        ));
    }
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
             \"args\":{{\"id\":{},\"parent\":{},\"detail\":\"{}\"}}}}",
            escape_json(event.label),
            event.start_micros,
            event.end_micros - event.start_micros,
            event.thread,
            event.id,
            event.parent,
            escape_json(&event.detail),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests share one lock so parallel test threads do not
    /// install/uninstall sinks under each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        uninstall_sink();
        assert!(!enabled());
        let mut evaluated = false;
        {
            let _span = span("noop");
            let _span2 = span_with("noop2", || {
                evaluated = true;
                String::from("never")
            });
        }
        assert!(!evaluated, "detail closure must not run while disabled");
        flush_thread();
    }

    #[test]
    fn spans_record_nesting_and_drain_to_the_sink() {
        let _guard = TEST_LOCK.lock().unwrap();
        let sink = Arc::new(TraceSink::new());
        install_sink(&sink);
        {
            let _outer = span("outer");
            {
                let _inner = span_with("inner", || "detail".to_string());
            }
        }
        flush_thread();
        uninstall_sink();
        let events = sink.take_events();
        assert_eq!(events.len(), 2, "inner drops first, then outer");
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.label, "inner");
        assert_eq!(inner.detail, "detail");
        assert_eq!(outer.label, "outer");
        assert_eq!(outer.parent, 0, "outer is top level");
        assert_eq!(inner.parent, outer.id, "inner nests under outer");
        assert!(inner.start_micros >= outer.start_micros);
        assert!(inner.end_micros <= outer.end_micros);
        assert_eq!(inner.thread, outer.thread);
    }

    #[test]
    fn worker_thread_spans_flush_on_thread_exit() {
        let _guard = TEST_LOCK.lock().unwrap();
        let sink = Arc::new(TraceSink::new());
        install_sink(&sink);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _span = span("worker");
            });
        });
        uninstall_sink();
        let events = sink.take_events();
        assert!(events.iter().any(|e| e.label == "worker"));
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let events = vec![
            SpanEvent {
                id: 1,
                parent: 0,
                label: "phase",
                detail: "cell \"a\"\n".to_string(),
                start_micros: 10,
                end_micros: 30,
                thread: 1,
            },
            SpanEvent {
                id: 2,
                parent: 1,
                label: "sub",
                detail: String::new(),
                start_micros: 12,
                end_micros: 20,
                thread: 2,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"phase\""));
        assert!(json.contains("\"dur\":20"));
        assert!(json.contains("cell \\\"a\\\"\\n"), "details are escaped");
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2, "one per thread");
    }
}
