//! The metrics registry: counters, gauges, fixed-bucket latency histograms,
//! and a deterministic Prometheus-style text renderer.
//!
//! The per-layer stat structs (`MatrixStats`, `PoolStats`, `StoreStats`,
//! the daemon's counters) each implement a `register_into(&mut Registry)`
//! that maps their fields onto this one schema; exporters then render the
//! registry instead of every layer hand-rolling its own aggregation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The fixed microsecond bucket upper bounds every latency histogram uses
/// (a final overflow bucket catches everything above the last bound).
/// Sharing one bound set is what makes histogram merging across shards,
/// sessions and daemons plain element-wise addition.
pub const BUCKET_BOUNDS: [u64; 19] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000,
];

/// Bucket count including the overflow bucket.
const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A thread-safe fixed-bucket latency histogram (microsecond samples).
///
/// Observation is lock-free (relaxed atomics — counters are derived data,
/// exact cross-thread ordering is irrelevant); reading goes through
/// [`Histogram::snapshot`].
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample of `micros`.
    pub fn observe(&self, micros: u64) {
        let index = BUCKET_BOUNDS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram reading: per-bucket counts plus sum and count.
///
/// Snapshots form a commutative monoid under [`HistogramSnapshot::merge`]
/// (element-wise addition), so shard-local histograms can be combined in
/// any grouping — the associativity the cross-shard tests enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Sum of all observed samples (microseconds).
    pub sum: u64,
    /// Number of observed samples.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw samples (equivalent to observing each).
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        let histogram = Histogram::new();
        for &sample in samples {
            histogram.observe(sample);
        }
        histogram.snapshot()
    }

    /// Element-wise addition — the associative, commutative merge.
    #[must_use]
    pub fn merge(mut self, other: &HistogramSnapshot) -> Self {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        self
    }

    /// Cumulative count at and below each bound, Prometheus `le` order
    /// (ending with the `+Inf` bucket, whose cumulative count equals
    /// [`HistogramSnapshot::count`]).
    #[must_use]
    pub fn cumulative(&self) -> [u64; BUCKETS] {
        let mut cumulative = self.buckets;
        for i in 1..BUCKETS {
            cumulative[i] += cumulative[i - 1];
        }
        cumulative
    }

    /// The upper bound of the bucket containing quantile `q` (0.0–1.0):
    /// the smallest bound whose cumulative count reaches `q * count`.
    /// Samples above the last bound report that last finite bound. Returns
    /// 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return BUCKET_BOUNDS
                    .get(index)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]);
            }
        }
        BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]
    }

    /// Serialises the snapshot as a JSON object: bucket-estimated
    /// `p50`/`p90`/`p95`/`p99`, `sum`, `count`, and the non-empty buckets
    /// as `{"le":bound,"count":n}` pairs (`"le":null` is the overflow
    /// bucket). Hand-rolled: the offline build has no serde.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        let mut first = true;
        for (index, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                buckets.push(',');
            }
            first = false;
            match BUCKET_BOUNDS.get(index) {
                Some(bound) => buckets.push_str(&format!("{{\"le\":{bound},\"count\":{count}}}")),
                None => buckets.push_str(&format!("{{\"le\":null,\"count\":{count}}}")),
            }
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\
             \"buckets\":[{buckets}]}}",
            self.count,
            self.sum,
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

/// The exact nearest-rank percentile of a **sorted ascending** slice: the
/// smallest element whose rank covers quantile `q` (0.0–1.0). Returns 0
/// for an empty slice. Used where raw samples are available (e.g. the
/// daemon's recent-cell ring) and bucket resolution would waste precision.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One registry entry key: metric name plus rendered label pairs
/// (`model="skip"`), empty for unlabelled series. Both `String`s so the
/// [`BTreeMap`] ordering makes rendering deterministic.
type SeriesKey = (String, String);

/// A metrics registry: the single schema every layer's counters register
/// into, rendered as Prometheus-style text exposition.
///
/// A registry is built per export (cheap — it is a handful of `BTreeMap`
/// inserts over already-maintained atomic counters), so there is no global
/// registration step and no lifetime coupling between layers.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, u64>,
    histograms: BTreeMap<SeriesKey, HistogramSnapshot>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a monotonic counter value.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counter_with(name, &[], value);
    }

    /// Registers a labelled counter value.
    pub fn counter_with(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counters
            .insert((name.to_string(), render_labels(labels)), value);
    }

    /// Registers a point-in-time gauge value.
    pub fn gauge(&mut self, name: &str, value: u64) {
        self.gauge_with(name, &[], value);
    }

    /// Registers a labelled gauge value.
    pub fn gauge_with(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.gauges
            .insert((name.to_string(), render_labels(labels)), value);
    }

    /// Registers a histogram snapshot.
    pub fn histogram(&mut self, name: &str, snapshot: &HistogramSnapshot) {
        self.histogram_with(name, &[], snapshot);
    }

    /// Registers a labelled histogram snapshot.
    pub fn histogram_with(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        self.histograms
            .insert((name.to_string(), render_labels(labels)), *snapshot);
    }

    /// Renders the registry as Prometheus text exposition: one `# TYPE`
    /// line per metric name, series sorted by name then labels, histograms
    /// expanded into cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`. Deterministic: the same registry contents always render
    /// the same bytes.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let render_plain = |family: &BTreeMap<SeriesKey, u64>, kind: &str, out: &mut String| {
            let mut last_name: Option<&str> = None;
            for ((name, labels), value) in family {
                if last_name != Some(name.as_str()) {
                    out.push_str(&format!("# TYPE {name} {kind}\n"));
                    last_name = Some(name.as_str());
                }
                if labels.is_empty() {
                    out.push_str(&format!("{name} {value}\n"));
                } else {
                    out.push_str(&format!("{name}{{{labels}}} {value}\n"));
                }
            }
        };
        render_plain(&self.counters, "counter", &mut out);
        render_plain(&self.gauges, "gauge", &mut out);
        let mut last_name: Option<&str> = None;
        for ((name, labels), snapshot) in &self.histograms {
            if last_name != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_name = Some(name.as_str());
            }
            let prefix = if labels.is_empty() {
                String::new()
            } else {
                format!("{labels},")
            };
            let cumulative = snapshot.cumulative();
            for (index, &count) in cumulative.iter().enumerate() {
                let le = match BUCKET_BOUNDS.get(index) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{name}_bucket{{{prefix}le=\"{le}\"}} {count}\n"));
            }
            let suffix_labels = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            out.push_str(&format!("{name}_sum{suffix_labels} {}\n", snapshot.sum));
            out.push_str(&format!("{name}_count{suffix_labels} {}\n", snapshot.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_sum_and_quantiles() {
        let h = Histogram::new();
        for sample in [1, 3, 40, 150, 800, 30_000, 5_000_000] {
            h.observe(sample);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 5_030_994);
        let cumulative = snap.cumulative();
        assert_eq!(cumulative[BUCKETS - 1], 7, "+Inf bucket sees everything");
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(0.5), 200, "150 lands in the le=200 bucket");
        assert_eq!(
            snap.quantile(1.0),
            1_000_000,
            "overflow reports the last finite bound"
        );
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        // Three shard-local histograms over different sample mixes.
        let a = HistogramSnapshot::from_samples(&[1, 7, 300, 40_000]);
        let b = HistogramSnapshot::from_samples(&[2, 2, 9_000_000]);
        let c = HistogramSnapshot::from_samples(&[55, 123_456]);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "associative");
        assert_eq!(b.merge(&a), a.merge(&b), "commutative");
        assert_eq!(
            left,
            HistogramSnapshot::from_samples(&[1, 7, 300, 40_000, 2, 2, 9_000_000, 55, 123_456]),
            "merging shards equals observing the union"
        );
        assert_eq!(left.merge(&HistogramSnapshot::default()), left, "identity");
    }

    #[test]
    fn exact_percentiles_use_nearest_rank() {
        let samples = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.95), 100);
        assert_eq!(percentile(&samples, 0.99), 100);
        assert_eq!(percentile(&samples, 0.0), 10);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let mut registry = Registry::new();
        registry.counter("secbranch_requests_total", 3);
        registry.counter_with("secbranch_cells_total", &[("kind", "warm")], 5);
        registry.counter_with("secbranch_cells_total", &[("kind", "cold")], 2);
        registry.gauge("secbranch_queue_depth", 1);
        let snap = HistogramSnapshot::from_samples(&[3, 700]);
        registry.histogram_with("secbranch_cell_micros", &[("model", "skip")], &snap);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE secbranch_requests_total counter\n"));
        assert!(text.contains("secbranch_requests_total 3\n"));
        assert!(text.contains("secbranch_cells_total{kind=\"cold\"} 2\n"));
        assert!(text.contains("secbranch_cells_total{kind=\"warm\"} 5\n"));
        assert!(text.contains("# TYPE secbranch_queue_depth gauge\n"));
        assert!(text.contains("# TYPE secbranch_cell_micros histogram\n"));
        assert!(text.contains("secbranch_cell_micros_bucket{model=\"skip\",le=\"5\"} 1\n"));
        assert!(text.contains("secbranch_cell_micros_bucket{model=\"skip\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("secbranch_cell_micros_sum{model=\"skip\"} 703\n"));
        assert!(text.contains("secbranch_cell_micros_count{model=\"skip\"} 2\n"));
        assert_eq!(
            text.matches("# TYPE secbranch_cells_total").count(),
            1,
            "one TYPE line per family"
        );
        let again = {
            let mut r = Registry::new();
            r.histogram_with("secbranch_cell_micros", &[("model", "skip")], &snap);
            r.counter_with("secbranch_cells_total", &[("kind", "cold")], 2);
            r.counter_with("secbranch_cells_total", &[("kind", "warm")], 5);
            r.counter("secbranch_requests_total", 3);
            r.gauge("secbranch_queue_depth", 1);
            r.render_prometheus()
        };
        assert_eq!(text, again, "insertion order does not matter");
    }

    #[test]
    fn snapshot_json_summarises_percentiles_and_buckets() {
        let snap = HistogramSnapshot::from_samples(&[3, 3, 700]);
        let json = snap.to_json();
        assert!(json.starts_with("{\"count\":3,\"sum\":706,"));
        assert!(json.contains("\"p50\":5"));
        assert!(json.contains("\"buckets\":[{\"le\":5,\"count\":2},{\"le\":1000,\"count\":1}]"));
        let empty = HistogramSnapshot::default().to_json();
        assert!(empty.contains("\"buckets\":[]"));
    }
}
