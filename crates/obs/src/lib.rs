//! `secbranch-obs` — the unified observability layer of the reproduction.
//!
//! Every other layer of the stack (pipeline builds, the matrix executor,
//! the trace/grid stores, the executor pool, the grid daemon) produces
//! *derived timing data*: when something ran, how long it took, how often a
//! cache hit. This crate gives all of them one shared vocabulary with a
//! hard contract borrowed from the paper's own discipline:
//!
//! > **Observability is derived data.** Nothing recorded here participates
//! > in report equality, artifact fingerprints, or persistence. Reports are
//! > byte-identical with tracing enabled or disabled, at any thread count.
//!
//! Three pieces:
//!
//! * **[`mod@clock`]** — a process-wide monotonic microsecond clock
//!   ([`monotonic_micros`]). All span timestamps share this origin, so
//!   events from different threads land on one timeline.
//! * **[`mod@trace`]** — span-based tracing. [`span`] / [`span_with`] return
//!   RAII guards that record `(id, parent, label, t_start, t_end, thread,
//!   detail)` events into a thread-local buffer, drained into an installed
//!   session-level [`TraceSink`]. With no sink installed ([`enabled`] is
//!   `false`) a span guard is a no-op that never takes a lock, formats a
//!   string, or reads the clock — the hot interpreter loop stays untouched.
//!   [`chrome_trace_json`] exports drained events as Chrome trace-event
//!   JSON loadable in `chrome://tracing` or Perfetto.
//! * **[`mod@metrics`]** — a metrics registry ([`Registry`]: counters,
//!   gauges, fixed-bucket latency [`Histogram`]s) that the per-layer stat
//!   structs (`MatrixStats`, `PoolStats`, `StoreStats`, daemon counters)
//!   register into, plus a deterministic Prometheus-style text renderer
//!   ([`Registry::render_prometheus`]) and a nearest-rank [`percentile`]
//!   helper. Histogram snapshots merge by plain addition, so merging is
//!   associative across shards (test-enforced).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(secbranch_obs::TraceSink::new());
//! secbranch_obs::install_sink(&sink);
//! {
//!     let _outer = secbranch_obs::span("request");
//!     let _inner = secbranch_obs::span_with("shard", || "cell 3".to_string());
//! }
//! secbranch_obs::flush_thread();
//! secbranch_obs::uninstall_sink();
//! let events = sink.take_events();
//! assert_eq!(events.len(), 2);
//! let json = secbranch_obs::chrome_trace_json(&events);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::monotonic_micros;
pub use metrics::{percentile, Histogram, HistogramSnapshot, Registry, BUCKET_BOUNDS};
pub use trace::{
    chrome_trace_json, enabled, flush_thread, install_sink, span, span_with, uninstall_sink, Span,
    SpanEvent, TraceSink,
};
