//! Host-side micro-benchmarks of the ARMv7-M simulator executing the
//! protected workloads (host time per guest run): one `Artifact` per
//! variant, many executions — the build-once/run-many contract. Uses the
//! harness in `secbranch_bench::micro` — the offline build has no criterion.

use secbranch::programs::memcmp_module;
use secbranch::{Pipeline, ProtectionVariant};
use secbranch_bench::micro::bench;

fn main() {
    let module = memcmp_module(128);
    let cfi = Pipeline::for_variant(ProtectionVariant::CfiOnly)
        .with_max_steps(10_000_000)
        .build(&module)
        .expect("builds");
    let prototype = Pipeline::for_variant(ProtectionVariant::AnCode)
        .with_max_steps(10_000_000)
        .build(&module)
        .expect("builds");

    bench("simulator/memcmp128/cfi_only", || {
        cfi.run("memcmp_bench", &[]).expect("runs")
    });
    bench("simulator/memcmp128/prototype", || {
        prototype.run("memcmp_bench", &[]).expect("runs")
    });
}
