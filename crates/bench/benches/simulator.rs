//! Criterion benches of the ARMv7-M simulator executing the protected
//! workloads (host time per guest run).

use criterion::{criterion_group, criterion_main, Criterion};
use secbranch::programs::memcmp_module;
use secbranch::{build, ProtectionVariant};

fn bench_simulator(c: &mut Criterion) {
    let module = memcmp_module(128);
    let cfi = build(&module, ProtectionVariant::CfiOnly).expect("builds");
    let prototype = build(&module, ProtectionVariant::AnCode).expect("builds");

    c.bench_function("simulator/memcmp128/cfi_only", |b| {
        let sim = cfi.clone().into_simulator(1 << 20);
        b.iter(|| {
            let mut sim = sim.clone();
            sim.call("memcmp_bench", &[], 10_000_000).expect("runs")
        })
    });
    c.bench_function("simulator/memcmp128/prototype", |b| {
        let sim = prototype.clone().into_simulator(1 << 20);
        b.iter(|| {
            let mut sim = sim.clone();
            sim.call("memcmp_bench", &[], 10_000_000).expect("runs")
        })
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
