//! Host-side micro-benchmarks of the compilation pipeline (passes + back
//! end), on the build-once `Pipeline` API. Uses the harness in
//! `secbranch_bench::micro` — the offline build has no criterion.

use secbranch::programs::{memcmp_module, password_check_module};
use secbranch::{Pipeline, ProtectionVariant};
use secbranch_bench::micro::bench;

fn main() {
    let memcmp = memcmp_module(128);
    let password = password_check_module(16);

    let cfi = Pipeline::for_variant(ProtectionVariant::CfiOnly);
    let prototype = Pipeline::for_variant(ProtectionVariant::AnCode);
    let duplication = Pipeline::for_variant(ProtectionVariant::Duplication(6));

    bench("pipeline/memcmp/cfi_only", || {
        cfi.build(&memcmp).expect("builds")
    });
    bench("pipeline/memcmp/prototype", || {
        prototype.build(&memcmp).expect("builds")
    });
    bench("pipeline/memcmp/duplication_x6", || {
        duplication.build(&memcmp).expect("builds")
    });
    bench("pipeline/password_check/prototype", || {
        prototype.build(&password).expect("builds")
    });

    // Fresh-simulator construction from one artifact: the fault campaigns'
    // hot path, at the campaigns' 64 KiB guest-memory configuration. With
    // the `Arc`-shared program this allocates only a machine (plus the
    // globals write) instead of deep-cloning the compilation; the
    // `deep_clone` row reproduces the pre-sharing cost for comparison.
    let artifact = prototype
        .with_memory_size(64 * 1024)
        .build(&memcmp)
        .expect("builds");
    bench("artifact/memcmp/fresh_simulator", || artifact.simulator());
    bench("artifact/memcmp/fresh_simulator_deep_clone", || {
        secbranch::armv7m::Simulator::new(
            artifact.compiled().program.as_ref().clone(),
            artifact.sim().memory_size,
        )
    });
}
