//! Criterion benches of the compilation pipeline (passes + back end).

use criterion::{criterion_group, criterion_main, Criterion};
use secbranch::programs::{memcmp_module, password_check_module};
use secbranch::{build, ProtectionVariant};

fn bench_pipeline(c: &mut Criterion) {
    let memcmp = memcmp_module(128);
    let password = password_check_module(16);

    c.bench_function("pipeline/memcmp/cfi_only", |b| {
        b.iter(|| build(&memcmp, ProtectionVariant::CfiOnly).expect("builds"))
    });
    c.bench_function("pipeline/memcmp/prototype", |b| {
        b.iter(|| build(&memcmp, ProtectionVariant::AnCode).expect("builds"))
    });
    c.bench_function("pipeline/memcmp/duplication_x6", |b| {
        b.iter(|| build(&memcmp, ProtectionVariant::Duplication(6)).expect("builds"))
    });
    c.bench_function("pipeline/password_check/prototype", |b| {
        b.iter(|| build(&password, ProtectionVariant::AnCode).expect("builds"))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
