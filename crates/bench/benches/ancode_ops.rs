//! Criterion benches of the AN-code primitives (host-side performance of the
//! library itself, complementing the guest-side cycle model of Table II).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use secbranch_ancode::{compare, Parameters, Predicate};

fn bench_encoded_compare(c: &mut Criterion) {
    let params = Parameters::paper_defaults();
    let code = params.code();
    let x = code.encode(12_345).expect("in range");
    let y = code.encode(54_321).expect("in range");

    c.bench_function("ancode/encode", |b| {
        b.iter(|| code.encode(black_box(12_345)).expect("in range"))
    });
    c.bench_function("ancode/check", |b| b.iter(|| code.check(black_box(x))));
    c.bench_function("ancode/encoded_compare/lt", |b| {
        b.iter(|| compare::encoded_compare(&params, Predicate::Ult, black_box(x), black_box(y)))
    });
    c.bench_function("ancode/encoded_compare/eq", |b| {
        b.iter(|| compare::encoded_compare(&params, Predicate::Eq, black_box(x), black_box(y)))
    });
}

fn bench_parameter_search(c: &mut Criterion) {
    c.bench_function("ancode/select_ordering_constant/a=4093", |b| {
        b.iter(|| secbranch_ancode::params::select_ordering_constant(black_box(4093)))
    });
}

criterion_group!(benches, bench_encoded_compare, bench_parameter_search);
criterion_main!(benches);
