//! Host-side micro-benchmarks of the AN-code primitives (complementing the
//! guest-side cycle model of Table II). Uses the harness in
//! `secbranch_bench::micro` — the offline build has no criterion.

use std::hint::black_box;

use secbranch_ancode::{compare, Parameters, Predicate};
use secbranch_bench::micro::bench;

fn main() {
    let params = Parameters::paper_defaults();
    let code = params.code();
    let x = code.encode(12_345).expect("in range");
    let y = code.encode(54_321).expect("in range");

    bench("ancode/encode", || {
        code.encode(black_box(12_345)).expect("in range")
    });
    bench("ancode/check", || code.check(black_box(x)));
    bench("ancode/encoded_compare/lt", || {
        compare::encoded_compare(&params, Predicate::Ult, black_box(x), black_box(y))
    });
    bench("ancode/encoded_compare/eq", || {
        compare::encoded_compare(&params, Predicate::Eq, black_box(x), black_box(y))
    });
    bench("ancode/select_ordering_constant/a=4093", || {
        secbranch_ancode::params::select_ordering_constant(black_box(4093))
    });
}
