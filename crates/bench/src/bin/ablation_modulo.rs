//! Ablation: sensitivity of the encoded-compare runtime to the cost of the
//! modulo operation (the paper notes that "hardware support for a fast modulo
//! instruction would considerably reduce this overhead").

use secbranch_ancode::Parameters;
use secbranch_codegen::snippet::{encoded_compare_operations, sequence_cost};
use secbranch_ir::Predicate;

fn main() {
    let params = Parameters::paper_defaults();
    let a = params.code().constant();
    println!("Ablation — encoded-compare cycles vs modulo cost");
    println!();
    println!(
        "{:>18} {:>22} {:>22}",
        "UDIV cycles", "ordering compare", "equality compare"
    );
    let ord = encoded_compare_operations(Predicate::Ult, a, params.ordering_constant());
    let eq = encoded_compare_operations(Predicate::Eq, a, params.equality_constant());
    let ord_base = sequence_cost(&ord);
    let eq_base = sequence_cost(&eq);
    // The sequences contain one (ordering) or two (equality) UDIV+MLS pairs;
    // sweep the division cost from the architectural minimum to the maximum,
    // plus a hypothetical single-cycle hardware modulo that replaces the
    // UDIV+MLS pair entirely.
    for udiv in 1..=12u64 {
        let ord_cycles = ord_base.min_cycles - 2 + udiv; // one UDIV at 2 in the min bound
        let eq_cycles = eq_base.min_cycles - 4 + 2 * udiv;
        println!("{udiv:>18} {ord_cycles:>22} {eq_cycles:>22}");
    }
    let ord_fast = ord_base.min_cycles - 2 - 2 + 1; // drop UDIV(2)+MLS(2), add 1-cycle modulo
    let eq_fast = eq_base.min_cycles - 4 - 4 + 2;
    println!("{:>18} {:>22} {:>22}", "1-cycle modulo", ord_fast, eq_fast);
}
