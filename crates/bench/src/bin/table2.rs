//! Regenerates Table II: qualitative overhead of the building blocks
//! (instruction mix, code size, cycle bounds of the encoded compare and the
//! CFI state update).

use secbranch_ancode::Parameters;
use secbranch_codegen::snippet::{
    encoded_compare_operations, sequence_cost, state_update_sequence,
};
use secbranch_ir::Predicate;

fn mix(ops: &[secbranch_armv7m::Instr]) -> String {
    use secbranch_armv7m::Instr;
    let count = |f: fn(&Instr) -> bool| ops.iter().filter(|i| f(i)).count();
    format!(
        "{} ADD, {} SUB, {} UDIV, {} MLS",
        count(|i| matches!(i, Instr::Add { .. })),
        count(|i| matches!(i, Instr::Sub { .. })),
        count(|i| matches!(i, Instr::Udiv { .. })),
        count(|i| matches!(i, Instr::Mls { .. }))
    )
}

fn main() {
    let params = Parameters::paper_defaults();
    let a = params.code().constant();
    println!("Table II — building-block overhead (ARMv7-M size/cycle model)");
    println!();
    println!(
        "{:<14} {:<28} {:>8} {:>12}",
        "predicate", "instructions", "size/B", "cycles"
    );
    for (label, pred, c) in [
        (">, >=, <, <=", Predicate::Ult, params.ordering_constant()),
        ("==, !=", Predicate::Eq, params.equality_constant()),
    ] {
        let ops = encoded_compare_operations(pred, a, c);
        let cost = sequence_cost(&ops);
        println!(
            "{:<14} {:<28} {:>8} {:>9}-{:<3}",
            label,
            mix(&ops),
            cost.size_bytes,
            cost.min_cycles,
            cost.max_cycles
        );
    }
    let update = state_update_sequence();
    let cost = sequence_cost(&update);
    println!();
    println!(
        "CFI state update per protected-branch successor: {} instructions, {} bytes, {}-{} cycles",
        cost.instructions, cost.size_bytes, cost.min_cycles, cost.max_cycles
    );
}
