//! `gridc` — the grid daemon's command-line client.
//!
//! Talks to a running `campaign --serve` daemon: sends grid requests
//! (streaming per-cell progress to stderr), fetches statistics, benchmarks
//! cold/warm/concurrent serving, and turns warm-serving expectations into
//! exit codes for CI.
//!
//! ```console
//! $ campaign --serve 127.0.0.1:7399 --store grid &   # elsewhere
//! $ gridc --addr 127.0.0.1:7399                      # default benchmark grid
//! $ gridc --addr 127.0.0.1:7399 --json               # full report JSON
//! $ gridc --addr 127.0.0.1:7399 --expect-warm        # fail unless zero simulation
//! $ gridc --addr 127.0.0.1:7399 --clients 4          # byte-identity under concurrency
//! $ gridc --addr 127.0.0.1:7399 --bench              # cold/warm/concurrent timings
//! $ gridc --addr 127.0.0.1:7399 --stats              # human-readable table
//! $ gridc --addr 127.0.0.1:7399 --stats --json       # raw snapshot JSON
//! $ gridc --addr 127.0.0.1:7399 --metrics            # Prometheus-style exposition
//! $ gridc --addr 127.0.0.1:7399 --shutdown
//! ```

use std::fmt::Write as _;
use std::process::exit;
use std::time::{Duration, Instant};

use secbranch_gridd::{protocol::StatsSnapshot, DoneFrame, GridClient, GridRequest};

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: gridc --addr ADDR [--workloads LIST] [--variants LIST] [--models LIST] \
         [--trials N] [--max-steps N] [--priority N] [--deadline-ms N] [--json] \
         [--expect-warm] [--clients N] [--bench] [--cold] [--stats] [--metrics] \
         [--shutdown]"
    );
    eprintln!("  --addr: the daemon (unix:PATH or host:port); required");
    eprintln!("  --workloads: comma list (default: the 4-workload benchmark grid)");
    eprintln!("  --variants: comma list (default unprotected,cfi,prototype)");
    eprintln!("  --models: comma list (default: all five fault models)");
    eprintln!("  --trials: sampling budget (default 200)");
    eprintln!("  --max-steps: per-execution step budget (default 200000)");
    eprintln!("  --priority: request priority, higher runs earlier (default 0)");
    eprintln!("  --deadline-ms: per-request wall budget, 0 = unbounded (default 0)");
    eprintln!("  --json: print the full report JSON instead of the summary");
    eprintln!("  --expect-warm: fail unless the daemon served everything without simulation");
    eprintln!("  --clients N: send the grid from N concurrent connections, assert identity");
    eprintln!("  --bench: cold pass, warm pass, concurrent pass; print BENCH JSON");
    eprintln!(
        "  --cold: make the daemon ignore (not delete) its cell cache for the request \
         (under --bench: the first pass only), so a pre-populated store still yields \
         a genuine cold measurement"
    );
    eprintln!(
        "  --stats: print a human-readable summary of the daemon's statistics \
         (with --json: the raw snapshot JSON)"
    );
    eprintln!("  --metrics: print the daemon's metrics registry (Prometheus text format)");
    eprintln!("  --shutdown: shut the daemon down; print its final snapshot JSON");
    exit(2);
}

fn fail(context: &str, error: &dyn std::fmt::Display) -> ! {
    eprintln!("gridc failed ({context}): {error}");
    exit(1);
}

struct Options {
    addr: String,
    workloads: Vec<String>,
    variants: Vec<String>,
    models: Vec<String>,
    trials: u64,
    max_steps: u64,
    priority: u8,
    deadline_ms: u64,
    json: bool,
    expect_warm: bool,
    clients: usize,
    bench: bool,
    cold: bool,
    stats: bool,
    metrics: bool,
    shutdown: bool,
}

fn comma_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().to_string())
        .collect()
}

fn parse_args() -> Options {
    let mut options = Options {
        addr: String::new(),
        workloads: comma_list("integer_compare,password_check,crc32,pin_retry"),
        variants: comma_list("unprotected,cfi,prototype"),
        models: comma_list("skip,double-skip,register-flip,memory-flip,branch-invert"),
        trials: 200,
        max_steps: 200_000,
        priority: 0,
        deadline_ms: 0,
        json: false,
        expect_warm: false,
        clients: 0,
        bench: false,
        cold: false,
        stats: false,
        metrics: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        macro_rules! int_of {
            ($flag:expr) => {
                value_of($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " needs an integer")))
            };
        }
        match arg.as_str() {
            "--addr" => options.addr = value_of("--addr"),
            "--workloads" => options.workloads = comma_list(&value_of("--workloads")),
            "--variants" => options.variants = comma_list(&value_of("--variants")),
            "--models" => options.models = comma_list(&value_of("--models")),
            "--trials" => options.trials = int_of!("--trials"),
            "--max-steps" => options.max_steps = int_of!("--max-steps"),
            "--priority" => options.priority = int_of!("--priority"),
            "--deadline-ms" => options.deadline_ms = int_of!("--deadline-ms"),
            "--json" => options.json = true,
            "--expect-warm" => options.expect_warm = true,
            "--clients" => options.clients = int_of!("--clients"),
            "--bench" => options.bench = true,
            "--cold" => options.cold = true,
            "--stats" => options.stats = true,
            "--metrics" => options.metrics = true,
            "--shutdown" => options.shutdown = true,
            flag => usage(&format!("unknown flag {flag:?}")),
        }
    }
    if options.addr.is_empty() {
        usage("--addr is required");
    }
    options
}

fn request_of(options: &Options, cold: bool) -> GridRequest {
    GridRequest {
        priority: options.priority,
        trials: options.trials,
        max_steps: options.max_steps,
        deadline_millis: options.deadline_ms,
        workloads: options.workloads.clone(),
        variants: options.variants.clone(),
        models: options.models.clone(),
        cold,
    }
}

fn connect(addr: &str) -> GridClient {
    GridClient::connect_with_retry(addr, 40, Duration::from_millis(250))
        .unwrap_or_else(|e| fail("connecting", &e))
}

fn done_json(done: &DoneFrame) -> String {
    format!(
        "{{\"cells\":{},\"warm_cells\":{},\"computed_cells\":{},\"coalesced_cells\":{},\
         \"recordings\":{},\"wall_micros\":{}}}",
        done.cells,
        done.warm_cells,
        done.computed_cells,
        done.coalesced_cells,
        done.recordings,
        done.wall_micros,
    )
}

/// One grid request with per-cell progress on stderr.
fn run_grid(client: &mut GridClient, request: &GridRequest, quiet: bool) -> DoneFrame {
    client
        .request_grid(request, |cell| {
            if !quiet {
                eprintln!(
                    "cell {:>3}/{} {:<10} {} / {} / {}",
                    cell.cell_index + 1,
                    cell.total_cells,
                    cell.served.label(),
                    cell.workload,
                    cell.pipeline,
                    cell.model,
                );
            }
        })
        .unwrap_or_else(|e| fail("grid request", &e))
}

/// `--clients N`: the same grid from N concurrent connections; every
/// report must be byte-identical. Returns the completion frames and the
/// wall time of the whole fan-out.
fn run_concurrent(options: &Options, clients: usize, cold: bool) -> (Vec<DoneFrame>, u64) {
    let started = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let addr = options.addr.clone();
        let request = request_of(options, cold);
        joins.push(std::thread::spawn(move || {
            run_grid(&mut connect(&addr), &request, true)
        }));
    }
    let results: Vec<DoneFrame> = joins
        .into_iter()
        .map(|join| {
            join.join()
                .unwrap_or_else(|_| fail("client thread", &"panicked"))
        })
        .collect();
    let wall_micros = started.elapsed().as_micros() as u64;
    for done in &results[1..] {
        if done.report_json != results[0].report_json {
            fail(
                "concurrent identity",
                &"clients received differing reports for one grid",
            );
        }
    }
    (results, wall_micros)
}

fn expect_warm(done: &DoneFrame) {
    if done.recordings != 0 || done.computed_cells != 0 || done.warm_cells != done.cells {
        fail(
            "--expect-warm",
            &format!(
                "daemon simulated: {} computed cell(s), {} coalesced, {} recording(s), \
                 {}/{} warm",
                done.computed_cells,
                done.coalesced_cells,
                done.recordings,
                done.warm_cells,
                done.cells
            ),
        );
    }
}

fn main() {
    let options = parse_args();

    if options.metrics {
        let mut client = connect(&options.addr);
        let exposition = client.metrics().unwrap_or_else(|e| fail("metrics", &e));
        print!("{exposition}");
        return;
    }

    if options.stats || options.shutdown {
        let mut client = connect(&options.addr);
        let snapshot = if options.shutdown {
            client.shutdown().unwrap_or_else(|e| fail("shutdown", &e))
        } else {
            client.stats().unwrap_or_else(|e| fail("stats", &e))
        };
        // `--json` (and `--shutdown`, whose snapshot CI parses) stays the
        // raw snapshot serialisation, byte for byte; the table is a
        // human-only rendering of the same numbers.
        if options.stats && !options.json {
            print!("{}", render_stats_table(&snapshot));
        } else {
            println!("{}", snapshot.to_json());
        }
        return;
    }

    if options.bench {
        run_benchmark(&options);
        return;
    }

    if options.clients > 1 {
        let (results, wall_micros) = run_concurrent(&options, options.clients, options.cold);
        println!(
            "{{\"clients\":{},\"identical\":true,\"wall_micros\":{},\"results\":[{}]}}",
            options.clients,
            wall_micros,
            results.iter().map(done_json).collect::<Vec<_>>().join(","),
        );
        return;
    }

    let request = request_of(&options, options.cold);
    let done = run_grid(&mut connect(&options.addr), &request, options.json);
    if options.expect_warm {
        expect_warm(&done);
    }
    if options.json {
        println!("{}", done.report_json);
    } else {
        println!("{}", done_json(&done));
    }
}

/// Percentage of `part` in `whole`, `-` when nothing happened yet.
fn rate(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / whole as f64)
    }
}

/// `--stats` without `--json`: the snapshot as a table a human can read at
/// a glance — serving and pool state, cache hit rates, and compute-time
/// percentiles over the daemon's recent-cell window.
fn render_stats_table(s: &StatsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "grid daemon statistics (protocol v{})",
        s.protocol_version
    );
    let _ = writeln!(
        out,
        "  requests         {:>10}   ({} refused/failed, {} version rejects)",
        s.requests, s.request_errors, s.version_rejects,
    );
    let _ = writeln!(
        out,
        "  cells            {:>10}   ({} warm, {} computed, {} coalesced)",
        s.cells_requested, s.warm_cells, s.computed_cells, s.coalesced_cells,
    );
    let _ = writeln!(
        out,
        "  pool             {:>10}   workers, {}/{} queued, {} in flight",
        s.workers, s.queue_depth, s.queue_capacity, s.in_flight,
    );
    let _ = writeln!(
        out,
        "  pool jobs        {:>10}   submitted ({} completed, {} errored, {} expired)",
        s.pool_submitted, s.pool_completed, s.pool_errored, s.pool_expired,
    );
    let _ = writeln!(
        out,
        "  cell hit rate    {:>10}   ({} of {} cells served without simulation)",
        rate(s.warm_cells + s.coalesced_cells, s.cells_requested),
        s.warm_cells + s.coalesced_cells,
        s.cells_requested,
    );
    let trace_total = s.trace_hits + s.trace_disk_hits + s.trace_misses;
    let _ = writeln!(
        out,
        "  trace hit rate   {:>10}   ({} memory + {} disk hits, {} recorded)",
        rate(s.trace_hits + s.trace_disk_hits, trace_total),
        s.trace_hits,
        s.trace_disk_hits,
        s.trace_misses,
    );
    let _ = writeln!(
        out,
        "  executor         {:>10}   snapshot restores, {} suffix steps saved, \
         {} programs decoded ({} µs)",
        s.snapshot_restores, s.suffix_steps_saved, s.decoded_programs, s.decode_micros,
    );
    let mut recent = s.recent_cell_micros.clone();
    recent.sort_unstable();
    let _ = writeln!(
        out,
        "  compute time     {:>10}   µs total; recent cells p50 {} / p95 {} / p99 {} µs \
         (window of {})",
        s.pool_compute_micros,
        secbranch::obs::percentile(&recent, 0.50),
        secbranch::obs::percentile(&recent, 0.95),
        secbranch::obs::percentile(&recent, 0.99),
        recent.len(),
    );
    if let Some(store) = &s.store {
        let _ = writeln!(out, "  store            {}", store.to_json());
    }
    out
}

/// `--bench`: one pass against whatever state the daemon's store is in
/// (cold on a fresh store, forced cold with `--cold` — the daemon ignores
/// its pre-populated cell cache for that pass without deleting it), one
/// guaranteed-warm pass, then a concurrent fan-out — the daemon-side
/// analogue of `campaign --matrix --store`'s cold-vs-warm numbers, emitted
/// as the BENCH_gridd JSON document.
fn run_benchmark(options: &Options) {
    let mut client = connect(&options.addr);
    let first = run_grid(&mut client, &request_of(options, options.cold), true);
    let warm = run_grid(&mut client, &request_of(options, false), true);
    if warm.report_json != first.report_json {
        fail(
            "benchmark identity",
            &"warm report differs from the first pass",
        );
    }
    let clients = if options.clients > 1 {
        options.clients
    } else {
        4
    };
    let (concurrent, concurrent_wall) = run_concurrent(options, clients, false);
    if concurrent[0].report_json != first.report_json {
        fail(
            "benchmark identity",
            &"concurrent reports differ from the first pass",
        );
    }
    let stats = client.stats().unwrap_or_else(|e| fail("stats", &e));
    println!(
        "{{\"grid\":{{\"workloads\":{},\"variants\":{},\"models\":{},\"cells\":{}}},\
         \"trials\":{},\"max_steps\":{},\"cold\":{},\
         \"first\":{},\"warm\":{},\"first_was_warm\":{},\"warm_was_warm\":{},\
         \"concurrent\":{{\"clients\":{},\"wall_micros\":{},\"identical\":true}},\
         \"daemon\":{}}}",
        options.workloads.len(),
        options.variants.len(),
        options.models.len(),
        first.cells,
        options.trials,
        options.max_steps,
        options.cold,
        done_json(&first),
        done_json(&warm),
        first.computed_cells == 0 && first.recordings == 0,
        warm.computed_cells == 0 && warm.recordings == 0,
        clients,
        concurrent_wall,
        stats.to_json(),
    );
}
