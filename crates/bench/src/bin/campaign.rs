//! Regenerates the Section V security numbers through the general campaign
//! engine: the historical instruction-skip sweep plus the richer attacker
//! models (double skip, register/memory bit flips, conditional-branch
//! inversion), as a variants × fault-models security matrix.
//!
//! ```console
//! $ campaign                                  # default matrix on integer compare
//! $ campaign unprotected prototype --models skip,branch-invert --trials 200
//! $ campaign --workload password_check --heatmap
//! $ campaign --json
//! ```

use std::process::exit;

use secbranch::campaign::{
    BranchInversion, CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip,
    MemoryBitFlip, RegisterBitFlip,
};
use secbranch::programs::{integer_compare_module, memcmp_module, password_check_module};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: campaign [variant labels...] [--models LIST] [--trials N] [--threads N] \
         [--workload NAME] [--json] [--heatmap]"
    );
    eprintln!("  variant labels: unprotected cfi \"duplication(xN)\" prototype");
    eprintln!("  --models: comma list of skip,double-skip,register-flip,memory-flip,branch-invert");
    eprintln!("  --trials: injection budget of the sampling models (default 2000)");
    eprintln!("  --threads: worker threads (default: available parallelism)");
    eprintln!("  --workload: integer_compare (default), memcmp, password_check");
    exit(2);
}

fn model_by_name(name: &str, trials: u64) -> Box<dyn FaultModel> {
    match name {
        "skip" => Box::new(InstructionSkip),
        "double-skip" => Box::new(DoubleInstructionSkip {
            max_injections: trials,
            seed: 0x2FA17,
        }),
        "register-flip" => Box::new(RegisterBitFlip {
            trials,
            seed: 0xABCDEF,
        }),
        "memory-flip" => Box::new(MemoryBitFlip {
            trials,
            seed: 0xFEED,
        }),
        "branch-invert" => Box::new(BranchInversion),
        other => usage(&format!("unknown fault model {other:?}")),
    }
}

fn workload_by_name(name: &str) -> Workload {
    match name {
        "integer_compare" => Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        "memcmp" => Workload::new("memcmp x16", memcmp_module(16), "memcmp_bench", &[]),
        "password_check" => Workload::new(
            "password check",
            password_check_module(8),
            "password_check",
            &[],
        ),
        other => usage(&format!("unknown workload {other:?}")),
    }
}

fn main() {
    let mut variants: Vec<ProtectionVariant> = Vec::new();
    let mut model_list = "skip,double-skip,register-flip,memory-flip,branch-invert".to_string();
    let mut trials: u64 = 2_000;
    let mut threads: Option<usize> = None;
    let mut workload_name = "integer_compare".to_string();
    let mut json = false;
    let mut heatmap = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--models" => model_list = value_of("--models"),
            "--trials" => {
                trials = value_of("--trials")
                    .parse()
                    .unwrap_or_else(|_| usage("--trials needs an integer"));
            }
            "--threads" => {
                threads = Some(
                    value_of("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("--threads needs an integer")),
                );
            }
            "--workload" => workload_name = value_of("--workload"),
            "--json" => json = true,
            "--heatmap" => heatmap = true,
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag:?}")),
            label => match label.parse::<ProtectionVariant>() {
                Ok(variant) => variants.push(variant),
                Err(e) => usage(&e.to_string()),
            },
        }
    }
    if variants.is_empty() {
        variants = vec![
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::AnCode,
        ];
    }

    let models: Vec<Box<dyn FaultModel>> = model_list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|name| model_by_name(name.trim(), trials))
        .collect();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let workloads = [workload_by_name(&workload_name)];
    let pipelines: Vec<Pipeline> = variants
        .iter()
        .map(|v| {
            Pipeline::for_variant(*v)
                .with_memory_size(1 << 18)
                .with_max_steps(10_000_000)
        })
        .collect();

    let runner = threads.map_or_else(CampaignRunner::new, |n| {
        CampaignRunner::new().with_threads(n)
    });
    let mut session = Session::new();
    let report = session
        .security_matrix_with(&runner, &workloads, &pipelines, &model_refs)
        .unwrap_or_else(|e| {
            eprintln!("campaign failed: {e}");
            exit(1);
        });

    if json {
        println!("{}", report.to_json());
        return;
    }
    println!(
        "Section V security matrix — {} worker thread(s), sampling budget {}",
        runner.threads(),
        trials
    );
    println!("(cells: escaped/injections (escape rate); skip column = the historical sweep)");
    println!();
    println!("{}", report.render_table());
    if heatmap {
        for cell in &report.cells {
            if cell.report.counts.wrong_result_undetected > 0 {
                println!(
                    "--- {} / {} / {} ---",
                    cell.workload, cell.pipeline, cell.model
                );
                println!("{}", cell.report.render_heatmap());
            }
        }
    }
}
