//! Regenerates the Section V security numbers through the general campaign
//! engine: the historical instruction-skip sweep plus the richer attacker
//! models (double skip, register/memory bit flips, conditional-branch
//! inversion), as a variants × fault-models security matrix executed on the
//! global fault-space scheduler.
//!
//! ```console
//! $ campaign                                  # default matrix on integer compare
//! $ campaign unprotected prototype --models skip,branch-invert --trials 200
//! $ campaign --workload password_check --heatmap
//! $ campaign --json
//! $ campaign --matrix --json                  # scheduler-vs-sequential benchmark
//! $ campaign --matrix --json --store grid     # …persisted: cold-vs-warm numbers
//! $ campaign --store grid --store-stats       # validate + summarise a store dir
//! $ campaign --store grid --compact           # drop records of dead artifacts
//! $ campaign --serve 127.0.0.1:7399 --store grid   # run the grid daemon
//! ```
//!
//! `--matrix` benchmarks the matrix executor against the sequential
//! per-cell path on a fixed 4-workload grid and emits machine-readable
//! timings (cells, threads, wall time, trace-cache hits) — the source of
//! `BENCH_matrix.json` in CI. With `--store DIR` the grid additionally
//! persists to a [`GridStore`]: the benchmark then runs the executor path
//! twice (whatever state the directory is in, then guaranteed-warm from a
//! fresh session) and reports cold-vs-warm wall time and hit rates;
//! `--expect-warm` turns "the first pass was already fully warm" into an
//! exit-code assertion for CI. Any failure (including a failing fault-free
//! reference run or a report that differs between paths) exits nonzero
//! with the error on stderr.

use std::process::exit;
use std::sync::Arc;

use secbranch::campaign::{
    BranchInversion, CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip,
    MatrixExecutor, MemoryBitFlip, RegisterBitFlip,
};
use secbranch::programs::{
    crc32_table_module, integer_compare_module, memcmp_module, password_check_module,
    pin_retry_module,
};
use secbranch::store::GridStore;
use secbranch::{MatrixStats, Pipeline, ProtectionVariant, SecurityReport, Session, Workload};
use secbranch_advisor::SelectiveHardening;

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: campaign [variant labels...] [--models LIST] [--trials N] [--threads N] \
         [--max-steps N] [--workload NAME] [--matrix] [--per-model] [--json] [--heatmap] \
         [--advise] [--expect-zero-escapes] [--store DIR] [--store-stats] \
         [--store-max-bytes N] [--compact] [--expect-warm] [--serve ADDR] \
         [--trace FILE] [--slow-cell-micros N]"
    );
    eprintln!("  variant labels: unprotected cfi \"duplication(xN)\" prototype");
    eprintln!("  --models: comma list of skip,double-skip,register-flip,memory-flip,branch-invert");
    eprintln!("  --trials: injection budget of the sampling models (default 2000)");
    eprintln!("  --threads: worker threads (default: available parallelism)");
    eprintln!(
        "  --max-steps: dynamic instruction budget per run (default 10000000; 200000 \
         under --matrix)"
    );
    eprintln!("  --workload: integer_compare (default), memcmp, password_check, crc32, pin_retry");
    eprintln!("  --matrix: benchmark the global scheduler against the sequential path");
    eprintln!(
        "  --per-model: with --matrix, break the executor's compute time down per fault \
         model (summed over the grid's cells)"
    );
    eprintln!(
        "  --advise: categorize escapes and run the closed selective-hardening loop on \
         the --workload list (default password_check,pin_retry); honours --threads, \
         --max-steps and --json"
    );
    eprintln!(
        "  --expect-zero-escapes: with --advise, fail unless every loop converges with \
         zero escapes under the selective configuration"
    );
    eprintln!("  --store: persist traces and finished cells in a grid store at DIR");
    eprintln!("  --store-stats: validate DIR and print its scan summary as JSON, then exit");
    eprintln!(
        "  --store-max-bytes: with --store, evict oldest records until DIR fits the \
         byte budget, print the eviction report as JSON, then exit"
    );
    eprintln!(
        "  --compact: with --store, drop records of artifacts outside the benchmark grid \
         (fixed 4 workloads x the selected variants), print what was removed, then exit"
    );
    eprintln!("  --expect-warm: with --matrix --store, fail unless the first pass was fully warm");
    eprintln!(
        "  --serve: run the grid daemon on ADDR (unix:PATH or host:port) until a client \
         sends SHUTDOWN; honours --store, --threads and --max-steps (as the step cap)"
    );
    eprintln!(
        "  --trace: write a Chrome trace-event JSON of the run's instrumented phases \
         to FILE (load it in Perfetto / chrome://tracing); timing-only, never \
         affects reports"
    );
    eprintln!(
        "  --slow-cell-micros: with --serve, log one stderr line per computed cell \
         at or over N microseconds (0 = off, the default)"
    );
    exit(2);
}

fn model_by_name(name: &str, trials: u64) -> Box<dyn FaultModel> {
    match name {
        "skip" => Box::new(InstructionSkip),
        "double-skip" => Box::new(DoubleInstructionSkip {
            max_injections: trials,
            seed: 0x2FA17,
        }),
        "register-flip" => Box::new(RegisterBitFlip {
            trials,
            seed: 0xABCDEF,
        }),
        "memory-flip" => Box::new(MemoryBitFlip {
            trials,
            seed: 0xFEED,
        }),
        "branch-invert" => Box::new(BranchInversion),
        other => usage(&format!("unknown fault model {other:?}")),
    }
}

fn workload_by_name(name: &str) -> Workload {
    match name {
        "integer_compare" => Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        "memcmp" => Workload::new("memcmp x16", memcmp_module(16), "memcmp_bench", &[]),
        "password_check" => Workload::new(
            "password check",
            password_check_module(8),
            "password_check",
            &[],
        ),
        "crc32" => Workload::new("crc32 x16", crc32_table_module(16), "crc32_check", &[]),
        "pin_retry" => Workload::new("pin retry", pin_retry_module(4, 3), "pin_check", &[]),
        other => usage(&format!("unknown workload {other:?}")),
    }
}

/// Exits with the error on stderr — shared by every failure path so the
/// process never reports success for a matrix it could not run (a failing
/// fault-free reference run included).
fn fail(context: &str, error: &dyn std::fmt::Display) -> ! {
    eprintln!("campaign failed ({context}): {error}");
    exit(1);
}

struct Options {
    variants: Vec<ProtectionVariant>,
    model_list: String,
    trials: u64,
    threads: Option<usize>,
    max_steps: Option<u64>,
    workload_name: Option<String>,
    matrix: bool,
    per_model: bool,
    json: bool,
    heatmap: bool,
    advise: bool,
    expect_zero_escapes: bool,
    store_dir: Option<String>,
    store_stats: bool,
    store_max_bytes: Option<u64>,
    compact: bool,
    expect_warm: bool,
    serve: Option<String>,
    trace_path: Option<String>,
    slow_cell_micros: u64,
}

impl Options {
    /// The per-run step budget: `--max-steps` when given, otherwise 10M for
    /// the exploratory matrix and 200k for the `--matrix` benchmark (the
    /// grid's reference runs are under 1k steps, so 200k is still 200×
    /// headroom — a 10M budget would let the few runaway faulted runs burn
    /// more cycles than the entire rest of the campaign and drown the
    /// scheduling comparison in shared suffix work).
    fn effective_max_steps(&self) -> u64 {
        self.max_steps
            .unwrap_or(if self.matrix { 200_000 } else { 10_000_000 })
    }
}

fn parse_args() -> Options {
    let mut options = Options {
        variants: Vec::new(),
        model_list: "skip,double-skip,register-flip,memory-flip,branch-invert".to_string(),
        trials: 2_000,
        threads: None,
        max_steps: None,
        workload_name: None,
        matrix: false,
        per_model: false,
        json: false,
        heatmap: false,
        advise: false,
        expect_zero_escapes: false,
        store_dir: None,
        store_stats: false,
        store_max_bytes: None,
        compact: false,
        expect_warm: false,
        serve: None,
        trace_path: None,
        slow_cell_micros: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--models" => options.model_list = value_of("--models"),
            "--trials" => {
                options.trials = value_of("--trials")
                    .parse()
                    .unwrap_or_else(|_| usage("--trials needs an integer"));
            }
            "--threads" => {
                options.threads = Some(
                    value_of("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("--threads needs an integer")),
                );
            }
            "--max-steps" => {
                options.max_steps = Some(
                    value_of("--max-steps")
                        .parse()
                        .unwrap_or_else(|_| usage("--max-steps needs an integer")),
                );
            }
            "--workload" => options.workload_name = Some(value_of("--workload")),
            "--matrix" => options.matrix = true,
            "--per-model" => options.per_model = true,
            "--json" => options.json = true,
            "--heatmap" => options.heatmap = true,
            "--advise" => options.advise = true,
            "--expect-zero-escapes" => options.expect_zero_escapes = true,
            "--store" => options.store_dir = Some(value_of("--store")),
            "--store-stats" => options.store_stats = true,
            "--store-max-bytes" => {
                options.store_max_bytes = Some(
                    value_of("--store-max-bytes")
                        .parse()
                        .unwrap_or_else(|_| usage("--store-max-bytes needs an integer")),
                );
            }
            "--compact" => options.compact = true,
            "--expect-warm" => options.expect_warm = true,
            "--serve" => options.serve = Some(value_of("--serve")),
            "--trace" => options.trace_path = Some(value_of("--trace")),
            "--slow-cell-micros" => {
                options.slow_cell_micros = value_of("--slow-cell-micros")
                    .parse()
                    .unwrap_or_else(|_| usage("--slow-cell-micros needs an integer"));
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag:?}")),
            label => match label.parse::<ProtectionVariant>() {
                Ok(variant) => options.variants.push(variant),
                Err(e) => usage(&e.to_string()),
            },
        }
    }
    if options.variants.is_empty() {
        options.variants = vec![
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::AnCode,
        ];
    }
    // The benchmark grid is fixed (its numbers are comparable across runs);
    // reject flags it would otherwise silently ignore.
    if options.matrix && options.workload_name.is_some() {
        usage("--matrix uses a fixed 2-workload grid; --workload does not apply");
    }
    if options.matrix && options.heatmap {
        usage("--matrix emits timings, not per-location heatmaps; drop --heatmap");
    }
    if options.per_model && !options.matrix {
        usage("--per-model breaks down --matrix timings; it needs --matrix");
    }
    if options.store_stats && options.store_dir.is_none() {
        usage("--store-stats needs --store DIR to know which store to scan");
    }
    if options.compact && options.store_dir.is_none() {
        usage("--compact needs --store DIR to know which store to compact");
    }
    if options.store_max_bytes.is_some() && options.store_dir.is_none() {
        usage("--store-max-bytes needs --store DIR to know which store to evict from");
    }
    if options.advise && (options.matrix || options.heatmap || options.serve.is_some()) {
        usage("--advise runs the selective-hardening loop; drop --matrix/--heatmap/--serve");
    }
    if options.expect_zero_escapes && !options.advise {
        usage("--expect-zero-escapes only applies to --advise runs");
    }
    if options.expect_warm && !(options.matrix && options.store_dir.is_some()) {
        usage("--expect-warm only applies to --matrix runs with --store");
    }
    if options.serve.is_some() && (options.matrix || options.store_stats || options.compact) {
        usage("--serve runs the daemon; drop --matrix/--store-stats/--compact");
    }
    if options.trace_path.is_some()
        && (options.serve.is_some()
            || options.advise
            || options.store_stats
            || options.compact
            || options.store_max_bytes.is_some())
    {
        usage("--trace records a campaign run; it does not apply to store/daemon modes");
    }
    if options.slow_cell_micros != 0 && options.serve.is_none() {
        usage("--slow-cell-micros configures the daemon; it needs --serve");
    }
    options
}

fn pipelines_for(variants: &[ProtectionVariant], max_steps: u64) -> Vec<Pipeline> {
    variants
        .iter()
        .map(|v| {
            Pipeline::for_variant(*v)
                .with_memory_size(1 << 18)
                .with_max_steps(max_steps)
        })
        .collect()
}

fn main() {
    let options = parse_args();

    // Daemon mode: serve grid requests until a client sends SHUTDOWN.
    if let Some(addr) = &options.serve {
        serve(addr, &options);
        return;
    }

    // Advisor mode: categorize the escapes of each workload and close the
    // selective-hardening loop.
    if options.advise {
        run_advise(&options);
        return;
    }

    let grid: Option<Arc<GridStore>> = options.store_dir.as_deref().map(|dir| {
        Arc::new(GridStore::open(dir).unwrap_or_else(|e| fail("opening the grid store", &e)))
    });

    // Standalone eviction: trim the store to the byte budget, oldest
    // records first, and report what was reclaimed.
    if let Some(max_bytes) = options.store_max_bytes {
        let grid = grid.as_ref().expect("checked in parse_args");
        let report = grid
            .evict_to(max_bytes)
            .unwrap_or_else(|e| fail("evicting from the grid store", &e));
        let scan = grid
            .scan()
            .unwrap_or_else(|e| fail("scanning the grid store", &e));
        println!(
            "{{\"max_bytes\":{max_bytes},\"evict\":{},\"scan\":{}}}",
            report.to_json(),
            scan.to_json()
        );
        return;
    }

    // Standalone compaction: drop records of artifacts the benchmark grid
    // can no longer produce, then summarise what remains.
    if options.compact {
        let grid = grid.as_ref().expect("checked in parse_args");
        compact_store(grid, &options);
        return;
    }

    // Standalone store inspection: validate every record and summarise.
    if options.store_stats {
        let grid = grid.as_ref().expect("checked in parse_args");
        let scan = grid
            .scan()
            .unwrap_or_else(|e| fail("scanning the grid store", &e));
        println!("{}", scan.to_json());
        return;
    }

    // With `--trace`, every instrumented phase of the run below lands in
    // this sink; the file is written after the campaign so tracing never
    // sits between the executor and its wall-clock numbers.
    let trace_sink = install_trace(&options);

    let models: Vec<Box<dyn FaultModel>> = options
        .model_list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|name| model_by_name(name.trim(), options.trials))
        .collect();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();
    let pipelines = pipelines_for(&options.variants, options.effective_max_steps());
    let executor = options.threads.map_or_else(MatrixExecutor::new, |n| {
        MatrixExecutor::new().with_threads(n)
    });

    if options.matrix {
        run_matrix_benchmark(&options, &pipelines, &model_refs, &executor, grid.as_ref());
        export_trace(&options, trace_sink);
        return;
    }

    let workloads = [workload_by_name(
        options
            .workload_name
            .as_deref()
            .unwrap_or("integer_compare"),
    )];
    let mut session = Session::new();
    let report = session
        .security_matrix_with(
            &executor,
            &workloads,
            &pipelines,
            &model_refs,
            grid.as_ref(),
        )
        .unwrap_or_else(|e| fail("security matrix", &e));
    export_trace(&options, trace_sink);

    if options.json {
        println!("{}", report.to_json());
        return;
    }
    println!(
        "Section V security matrix — {} worker thread(s), sampling budget {}, \
         {} trace recording(s) for {} cell(s)",
        executor.threads(),
        options.trials,
        report.stats.trace_misses,
        report.cells.len(),
    );
    if let Some(grid) = &grid {
        println!(
            "grid store {}: {} cell hit(s), {} trace disk hit(s), stats {}",
            grid.root().display(),
            report.stats.cell_hits,
            report.stats.trace_disk_hits,
            grid.stats().to_json(),
        );
    }
    println!("(cells: escaped/injections (escape rate); skip column = the historical sweep)");
    println!();
    println!("{}", report.render_table());
    if options.heatmap {
        for cell in &report.cells {
            if cell.report.counts.wrong_result_undetected > 0 {
                println!(
                    "--- {} / {} / {} ---",
                    cell.workload, cell.pipeline, cell.model
                );
                println!("{}", cell.report.render_heatmap());
            }
        }
    }
}

/// `--trace`: builds a session-level span sink and arms the thread-local
/// tracing hooks. Returns `None` when tracing was not requested, in which
/// case every span in the codebase stays a no-op.
fn install_trace(options: &Options) -> Option<Arc<secbranch::obs::TraceSink>> {
    options.trace_path.as_ref().map(|_| {
        let sink = Arc::new(secbranch::obs::TraceSink::new());
        secbranch::obs::install_sink(&sink);
        sink
    })
}

/// Drains the trace sink into a Chrome trace-event JSON file. The
/// single-threaded executor path runs on this thread, so its buffered
/// spans must be flushed explicitly before the drain (scoped workers flush
/// on exit).
fn export_trace(options: &Options, sink: Option<Arc<secbranch::obs::TraceSink>>) {
    let (Some(path), Some(sink)) = (options.trace_path.as_deref(), sink) else {
        return;
    };
    secbranch::obs::flush_thread();
    secbranch::obs::uninstall_sink();
    let events = sink.take_events();
    std::fs::write(path, secbranch::obs::chrome_trace_json(&events))
        .unwrap_or_else(|e| fail("writing the trace file", &e));
    eprintln!("trace: {} span(s) written to {path}", events.len());
}

/// Runs the grid daemon in the foreground, honouring `--store` (the
/// persistent store), `--threads` (the worker pool), `--max-steps` (the
/// per-request step cap) and `--slow-cell-micros` (structured slow-cell
/// logging).
fn serve(addr: &str, options: &Options) {
    let config = secbranch_gridd::DaemonConfig {
        workers: options.threads.unwrap_or(0),
        store_dir: options.store_dir.as_ref().map(std::path::PathBuf::from),
        max_steps_cap: options.max_steps.unwrap_or(10_000_000),
        slow_cell_micros: options.slow_cell_micros,
        ..secbranch_gridd::DaemonConfig::default()
    };
    let daemon = secbranch_gridd::GridDaemon::bind(addr, config)
        .unwrap_or_else(|e| fail("binding the grid daemon", &e));
    eprintln!("gridd listening on {}", daemon.local_addr());
    daemon.run().unwrap_or_else(|e| fail("grid daemon", &e));
}

/// `--advise`: categorizes every escaping fault of each named workload
/// (comma list; default the two CI workloads) and closes the selective-
/// hardening loop, printing the remediation report, the round progression
/// and the selective-vs-full comparison — the source of
/// `BENCH_advisor.json` in CI. With `--expect-zero-escapes` the process
/// exits nonzero (after printing, so artifacts survive) unless every loop
/// converged with zero escapes under the selective configuration.
fn run_advise(options: &Options) {
    let list = options
        .workload_name
        .clone()
        .unwrap_or_else(|| "password_check,pin_retry".to_string());
    let driver = SelectiveHardening::new()
        .with_threads(options.threads.unwrap_or(1))
        .with_max_steps(options.max_steps.unwrap_or(200_000));
    let mut outcomes = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let workload = workload_by_name(name);
        outcomes.push(
            driver
                .advise(&workload)
                .unwrap_or_else(|e| fail("advise", &e)),
        );
    }
    if outcomes.is_empty() {
        usage("--advise needs at least one workload");
    }
    if options.json {
        let parts: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
        println!("{{\"advise\":[{}]}}", parts.join(","));
    } else {
        for outcome in &outcomes {
            println!("=== {} ===", outcome.workload);
            println!("{}", outcome.render_summary());
        }
    }
    if options.expect_zero_escapes {
        for outcome in &outcomes {
            if !outcome.converged || outcome.selective.total_escapes() != 0 {
                fail(
                    "--expect-zero-escapes",
                    &format!(
                        "{}: selective configuration left {} escape(s) (converged: {})",
                        outcome.workload,
                        outcome.selective.total_escapes(),
                        outcome.converged
                    ),
                );
            }
        }
    }
}

/// `--compact`: rebuilds the benchmark grid's artifact fingerprints (the
/// fixed 4 workloads under the selected variants and step budget — the
/// `--matrix` default of 200k unless `--max-steps` overrides it), drops
/// every store record whose artifact is not among them, and prints the
/// removal counts next to a post-compaction scan.
fn compact_store(grid: &Arc<GridStore>, options: &Options) {
    let max_steps = options.max_steps.unwrap_or(200_000);
    let pipelines = pipelines_for(&options.variants, max_steps);
    let workloads = [
        workload_by_name("integer_compare"),
        workload_by_name("password_check"),
        workload_by_name("crc32"),
        workload_by_name("pin_retry"),
    ];
    let mut session = Session::new();
    let mut live = std::collections::HashSet::new();
    for workload in &workloads {
        for pipeline in &pipelines {
            let artifact = session
                .artifact(&workload.name, &workload.module, pipeline)
                .unwrap_or_else(|e| fail("building the live set", &e));
            live.insert(artifact.artifact_fingerprint().to_string());
        }
    }
    let report = grid
        .compact(&live)
        .unwrap_or_else(|e| fail("compacting the grid store", &e));
    let scan = grid
        .scan()
        .unwrap_or_else(|e| fail("scanning the grid store", &e));
    println!(
        "{{\"compact\":{},\"scan\":{}}}",
        report.to_json(),
        scan.to_json()
    );
}

/// One executor pass of the `--matrix` benchmark, condensed for the JSON
/// and text summaries.
struct PassSummary {
    wall_micros: u64,
    trace_hits: u64,
    trace_disk_hits: u64,
    trace_misses: u64,
    cell_hits: u64,
    cell_misses: u64,
    /// Reference traces the pass's session actually recorded (a
    /// before/after delta of the session trace store's miss counter).
    /// `trace_misses` above only counts recordings the executor could
    /// *attribute to a cell* — a recording behind a served-warm cell is
    /// invisible to it, so warmth is asserted on this counter too.
    recordings: u64,
}

impl PassSummary {
    fn of(stats: &MatrixStats, recordings: u64) -> PassSummary {
        PassSummary {
            wall_micros: stats.total_wall_micros,
            trace_hits: stats.trace_hits,
            trace_disk_hits: stats.trace_disk_hits,
            trace_misses: stats.trace_misses,
            cell_hits: stats.cell_hits,
            cell_misses: stats.cell_misses,
            recordings,
        }
    }

    /// Fully warm: nothing recorded (per-cell attribution *and* the
    /// session's recording counter), nothing simulated.
    fn is_warm(&self) -> bool {
        self.trace_misses == 0
            && self.recordings == 0
            && self.cell_hits > 0
            && self.cell_misses == 0
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"wall_micros\":{},\"trace_hits\":{},\"trace_disk_hits\":{},\
             \"trace_misses\":{},\"cell_hits\":{},\"cell_misses\":{},\"recordings\":{}}}",
            self.wall_micros,
            self.trace_hits,
            self.trace_disk_hits,
            self.trace_misses,
            self.cell_hits,
            self.cell_misses,
            self.recordings,
        )
    }
}

/// The `--matrix` benchmark: one fixed grid (4 workloads × variants ×
/// models), first on the sequential per-cell path, then on the global
/// scheduler, in one session so both pay zero build time (the cache is
/// pre-warmed) and the scheduler starts with a cold trace store. With a
/// grid store attached, a second executor pass runs from a *fresh* session
/// (empty build cache aside, its trace store is empty too), so its numbers
/// are the honest cold-vs-warm comparison: everything it has, it has from
/// disk.
fn run_matrix_benchmark(
    options: &Options,
    pipelines: &[Pipeline],
    models: &[&dyn FaultModel],
    executor: &MatrixExecutor,
    grid: Option<&Arc<GridStore>>,
) {
    let workloads = [
        workload_by_name("integer_compare"),
        workload_by_name("password_check"),
        workload_by_name("crc32"),
        workload_by_name("pin_retry"),
    ];
    let mut session = Session::new();

    // Warm the build cache so neither path's campaign wall time pays for
    // compilation.
    let build_started = std::time::Instant::now();
    for workload in &workloads {
        for pipeline in pipelines {
            session
                .artifact(&workload.name, &workload.module, pipeline)
                .unwrap_or_else(|e| fail("build", &e));
        }
    }
    let build_micros = build_started.elapsed().as_micros() as u64;

    let sequential = session
        .security_matrix_sequential_with(
            &CampaignRunner::new().with_threads(1),
            &workloads,
            pipelines,
            models,
        )
        .unwrap_or_else(|e| fail("sequential security matrix", &e));
    let misses_before = session.trace_store().misses();
    let matrix = session
        .security_matrix_with(executor, &workloads, pipelines, models, grid)
        .unwrap_or_else(|e| fail("matrix security matrix", &e));
    assert_identical(&sequential, &matrix, "matrix executor");
    let first = PassSummary::of(
        &matrix.stats,
        session.trace_store().misses() - misses_before,
    );

    // With a store: a second pass from a *fresh* session. Its in-memory
    // caches are empty, so every hit it reports is a disk hit — the
    // guaranteed-warm numbers.
    let warm = grid.map(|grid| {
        let mut fresh = Session::new();
        let warm_report = fresh
            .security_matrix_with(executor, &workloads, pipelines, models, Some(grid))
            .unwrap_or_else(|e| fail("warm security matrix", &e));
        assert_identical(&sequential, &warm_report, "warm matrix executor");
        PassSummary::of(&warm_report.stats, fresh.trace_store().misses())
    });

    if options.expect_warm && !first.is_warm() {
        fail(
            "--expect-warm",
            &format!(
                "first pass was not fully warm: {} attributed trace recording(s), \
                 {} session recording(s), {} cell hit(s), {} computed cell(s)",
                first.trace_misses, first.recordings, first.cell_hits, first.cell_misses
            ),
        );
    }

    let speedup = if first.wall_micros == 0 {
        0.0
    } else {
        sequential.stats.total_wall_micros as f64 / first.wall_micros as f64
    };

    // Per-model compute aggregation: cells are in workload-major,
    // pipeline-then-model order, so a model's cells are every
    // `models.len()`-th compute entry.
    let per_model: Vec<(&str, u64)> = matrix
        .models
        .iter()
        .enumerate()
        .map(|(model_index, name)| {
            let total = matrix
                .stats
                .cell_compute_micros
                .iter()
                .skip(model_index)
                .step_by(matrix.models.len())
                .sum();
            (name.as_str(), total)
        })
        .collect();

    if options.json {
        let cell_micros: Vec<String> = matrix
            .stats
            .cell_compute_micros
            .iter()
            .map(u64::to_string)
            .collect();
        let per_model_json = if options.per_model {
            let entries: Vec<String> = per_model
                .iter()
                .map(|(name, micros)| {
                    format!(
                        "{{\"model\":{},\"compute_micros\":{micros}}}",
                        secbranch::campaign::json_string(name)
                    )
                })
                .collect();
            format!(",\"per_model\":[{}]", entries.join(","))
        } else {
            String::new()
        };
        let store_json = match (&warm, grid) {
            (Some(warm), Some(grid)) => format!(
                "{{\"dir\":{},\"first\":{},\"warm\":{},\"first_warm\":{},\
                 \"runtime\":{}}}",
                secbranch::campaign::json_string(&grid.root().display().to_string()),
                first.to_json(),
                warm.to_json(),
                first.is_warm(),
                grid.stats().to_json(),
            ),
            _ => "null".to_string(),
        };
        println!(
            "{{\"grid\":{{\"workloads\":{},\"pipelines\":{},\"models\":{},\"cells\":{}}},\
             \"threads\":{},\"shard_size\":{},\"host_parallelism\":{},\"trials\":{},\
             \"max_steps\":{},\"build_micros\":{},\
             \"sequential\":{{\"wall_micros\":{},\"trace_hits\":0,\"trace_misses\":{}}},\
             \"matrix\":{{\"wall_micros\":{},\"trace_hits\":{},\"trace_disk_hits\":{},\
             \"trace_misses\":{},\"cell_hits\":{},\"cell_misses\":{},\
             \"cell_compute_micros\":[{}],\"snapshot_restores\":{},\
             \"suffix_steps_saved\":{},\"decoded_programs\":{},\"decoded_uops\":{},\
             \"decode_micros\":{},\"compute_histogram\":{}{per_model_json}}},\
             \"store\":{store_json},\
             \"speedup\":{:.3},\"identical\":true}}",
            matrix.workloads.len(),
            matrix.pipelines.len(),
            matrix.models.len(),
            matrix.cells.len(),
            executor.threads(),
            executor.shard_size(),
            std::thread::available_parallelism().map_or(1, usize::from),
            options.trials,
            options.effective_max_steps(),
            build_micros,
            sequential.stats.total_wall_micros,
            sequential.stats.trace_misses,
            first.wall_micros,
            first.trace_hits,
            first.trace_disk_hits,
            first.trace_misses,
            first.cell_hits,
            first.cell_misses,
            cell_micros.join(","),
            matrix.stats.snapshot_restores,
            matrix.stats.suffix_steps_saved,
            matrix.stats.decoded_programs,
            matrix.stats.decoded_uops,
            matrix.stats.decode_micros,
            matrix.stats.compute_histogram().to_json(),
            speedup,
        );
        return;
    }
    println!(
        "Matrix benchmark — {} cells ({} workloads × {} pipelines × {} models), \
         sampling budget {}",
        matrix.cells.len(),
        matrix.workloads.len(),
        matrix.pipelines.len(),
        matrix.models.len(),
        options.trials,
    );
    println!(
        "sequential path:  {:>10} µs  ({} trace recordings)",
        sequential.stats.total_wall_micros, sequential.stats.trace_misses,
    );
    println!(
        "matrix executor:  {:>10} µs  ({} threads, {} trace recordings, {} memory + {} disk \
         trace hits, {} cell hits)",
        first.wall_micros,
        executor.threads(),
        first.trace_misses,
        first.trace_hits,
        first.trace_disk_hits,
        first.cell_hits,
    );
    if options.per_model {
        let parts: Vec<String> = per_model
            .iter()
            .map(|(name, micros)| format!("{name}={micros}µs"))
            .collect();
        println!("per-model compute: {}", parts.join("  "));
    }
    let histogram = matrix.stats.compute_histogram();
    println!(
        "cell compute:     p50 ≤{} µs, p95 ≤{} µs, p99 ≤{} µs over {} cells",
        histogram.quantile(0.50),
        histogram.quantile(0.95),
        histogram.quantile(0.99),
        histogram.count,
    );
    if let Some(warm) = &warm {
        let warm_speedup = if warm.wall_micros == 0 {
            0.0
        } else {
            sequential.stats.total_wall_micros as f64 / warm.wall_micros as f64
        };
        println!(
            "warm from store:  {:>10} µs  ({} cell hits, {} trace recordings, {warm_speedup:.2}x \
             vs sequential)",
            warm.wall_micros, warm.cell_hits, warm.trace_misses,
        );
    }
    println!("speedup: {speedup:.2}x  (reports byte-identical)");
}

/// Exits nonzero unless `report` matches the sequential reference both
/// structurally and as serialised bytes — the invariant every executor
/// pass (cold, store-attached, warm-from-disk) must uphold.
fn assert_identical(sequential: &SecurityReport, report: &SecurityReport, label: &str) {
    if sequential != report || sequential.to_json() != report.to_json() {
        fail(
            "invariant",
            &format!("{label} output differs from the sequential path"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::PassSummary;

    fn warm_pass() -> PassSummary {
        PassSummary {
            wall_micros: 10,
            trace_hits: 0,
            trace_disk_hits: 0,
            trace_misses: 0,
            cell_hits: 4,
            cell_misses: 0,
            recordings: 0,
        }
    }

    #[test]
    fn a_pass_is_warm_only_without_recordings_or_computed_cells() {
        assert!(warm_pass().is_warm());

        // A recording the executor could not attribute to any cell (all
        // cells served warm) still disqualifies the pass: warm means the
        // session wrote *nothing*, not just that no cell was computed.
        let mut rerecorded = warm_pass();
        rerecorded.recordings = 1;
        assert!(!rerecorded.is_warm());

        let mut attributed = warm_pass();
        attributed.trace_misses = 1;
        attributed.recordings = 1;
        assert!(!attributed.is_warm());

        let mut computed = warm_pass();
        computed.cell_misses = 1;
        assert!(!computed.is_warm());

        let mut empty = warm_pass();
        empty.cell_hits = 0;
        assert!(!empty.is_warm(), "an empty pass proves nothing");
    }

    #[test]
    fn pass_summaries_serialise_the_recording_counter() {
        let mut pass = warm_pass();
        pass.recordings = 3;
        assert!(pass.to_json().contains("\"recordings\":3"));
    }
}
