//! Regenerates the Section V security numbers through the general campaign
//! engine: the historical instruction-skip sweep plus the richer attacker
//! models (double skip, register/memory bit flips, conditional-branch
//! inversion), as a variants × fault-models security matrix executed on the
//! global fault-space scheduler.
//!
//! ```console
//! $ campaign                                  # default matrix on integer compare
//! $ campaign unprotected prototype --models skip,branch-invert --trials 200
//! $ campaign --workload password_check --heatmap
//! $ campaign --json
//! $ campaign --matrix --json                  # scheduler-vs-sequential benchmark
//! ```
//!
//! `--matrix` benchmarks the matrix executor against the sequential
//! per-cell path on a 2-workloads grid and emits machine-readable timings
//! (cells, threads, wall time, trace-cache hits) — the source of
//! `BENCH_matrix.json` in CI. Any failure (including a failing fault-free
//! reference run) exits nonzero with the error on stderr.

use std::process::exit;

use secbranch::campaign::{
    BranchInversion, CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip,
    MatrixExecutor, MemoryBitFlip, RegisterBitFlip,
};
use secbranch::programs::{integer_compare_module, memcmp_module, password_check_module};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: campaign [variant labels...] [--models LIST] [--trials N] [--threads N] \
         [--max-steps N] [--workload NAME] [--matrix] [--json] [--heatmap]"
    );
    eprintln!("  variant labels: unprotected cfi \"duplication(xN)\" prototype");
    eprintln!("  --models: comma list of skip,double-skip,register-flip,memory-flip,branch-invert");
    eprintln!("  --trials: injection budget of the sampling models (default 2000)");
    eprintln!("  --threads: worker threads (default: available parallelism)");
    eprintln!(
        "  --max-steps: dynamic instruction budget per run (default 10000000; 200000 \
         under --matrix)"
    );
    eprintln!("  --workload: integer_compare (default), memcmp, password_check");
    eprintln!("  --matrix: benchmark the global scheduler against the sequential path");
    exit(2);
}

fn model_by_name(name: &str, trials: u64) -> Box<dyn FaultModel> {
    match name {
        "skip" => Box::new(InstructionSkip),
        "double-skip" => Box::new(DoubleInstructionSkip {
            max_injections: trials,
            seed: 0x2FA17,
        }),
        "register-flip" => Box::new(RegisterBitFlip {
            trials,
            seed: 0xABCDEF,
        }),
        "memory-flip" => Box::new(MemoryBitFlip {
            trials,
            seed: 0xFEED,
        }),
        "branch-invert" => Box::new(BranchInversion),
        other => usage(&format!("unknown fault model {other:?}")),
    }
}

fn workload_by_name(name: &str) -> Workload {
    match name {
        "integer_compare" => Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        "memcmp" => Workload::new("memcmp x16", memcmp_module(16), "memcmp_bench", &[]),
        "password_check" => Workload::new(
            "password check",
            password_check_module(8),
            "password_check",
            &[],
        ),
        other => usage(&format!("unknown workload {other:?}")),
    }
}

/// Exits with the error on stderr — shared by every failure path so the
/// process never reports success for a matrix it could not run (a failing
/// fault-free reference run included).
fn fail(context: &str, error: &dyn std::fmt::Display) -> ! {
    eprintln!("campaign failed ({context}): {error}");
    exit(1);
}

struct Options {
    variants: Vec<ProtectionVariant>,
    model_list: String,
    trials: u64,
    threads: Option<usize>,
    max_steps: Option<u64>,
    workload_name: Option<String>,
    matrix: bool,
    json: bool,
    heatmap: bool,
}

impl Options {
    /// The per-run step budget: `--max-steps` when given, otherwise 10M for
    /// the exploratory matrix and 200k for the `--matrix` benchmark (the
    /// grid's reference runs are under 1k steps, so 200k is still 200×
    /// headroom — a 10M budget would let the few runaway faulted runs burn
    /// more cycles than the entire rest of the campaign and drown the
    /// scheduling comparison in shared suffix work).
    fn effective_max_steps(&self) -> u64 {
        self.max_steps
            .unwrap_or(if self.matrix { 200_000 } else { 10_000_000 })
    }
}

fn parse_args() -> Options {
    let mut options = Options {
        variants: Vec::new(),
        model_list: "skip,double-skip,register-flip,memory-flip,branch-invert".to_string(),
        trials: 2_000,
        threads: None,
        max_steps: None,
        workload_name: None,
        matrix: false,
        json: false,
        heatmap: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--models" => options.model_list = value_of("--models"),
            "--trials" => {
                options.trials = value_of("--trials")
                    .parse()
                    .unwrap_or_else(|_| usage("--trials needs an integer"));
            }
            "--threads" => {
                options.threads = Some(
                    value_of("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("--threads needs an integer")),
                );
            }
            "--max-steps" => {
                options.max_steps = Some(
                    value_of("--max-steps")
                        .parse()
                        .unwrap_or_else(|_| usage("--max-steps needs an integer")),
                );
            }
            "--workload" => options.workload_name = Some(value_of("--workload")),
            "--matrix" => options.matrix = true,
            "--json" => options.json = true,
            "--heatmap" => options.heatmap = true,
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag:?}")),
            label => match label.parse::<ProtectionVariant>() {
                Ok(variant) => options.variants.push(variant),
                Err(e) => usage(&e.to_string()),
            },
        }
    }
    if options.variants.is_empty() {
        options.variants = vec![
            ProtectionVariant::Unprotected,
            ProtectionVariant::CfiOnly,
            ProtectionVariant::AnCode,
        ];
    }
    // The benchmark grid is fixed (its numbers are comparable across runs);
    // reject flags it would otherwise silently ignore.
    if options.matrix && options.workload_name.is_some() {
        usage("--matrix uses a fixed 2-workload grid; --workload does not apply");
    }
    if options.matrix && options.heatmap {
        usage("--matrix emits timings, not per-location heatmaps; drop --heatmap");
    }
    options
}

fn pipelines_for(variants: &[ProtectionVariant], max_steps: u64) -> Vec<Pipeline> {
    variants
        .iter()
        .map(|v| {
            Pipeline::for_variant(*v)
                .with_memory_size(1 << 18)
                .with_max_steps(max_steps)
        })
        .collect()
}

fn main() {
    let options = parse_args();
    let models: Vec<Box<dyn FaultModel>> = options
        .model_list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|name| model_by_name(name.trim(), options.trials))
        .collect();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();
    let pipelines = pipelines_for(&options.variants, options.effective_max_steps());
    let executor = options.threads.map_or_else(MatrixExecutor::new, |n| {
        MatrixExecutor::new().with_threads(n)
    });

    if options.matrix {
        run_matrix_benchmark(&options, &pipelines, &model_refs, &executor);
        return;
    }

    let workloads = [workload_by_name(
        options
            .workload_name
            .as_deref()
            .unwrap_or("integer_compare"),
    )];
    let mut session = Session::new();
    let report = session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs)
        .unwrap_or_else(|e| fail("security matrix", &e));

    if options.json {
        println!("{}", report.to_json());
        return;
    }
    println!(
        "Section V security matrix — {} worker thread(s), sampling budget {}, \
         {} trace recording(s) for {} cell(s)",
        executor.threads(),
        options.trials,
        report.stats.trace_misses,
        report.cells.len(),
    );
    println!("(cells: escaped/injections (escape rate); skip column = the historical sweep)");
    println!();
    println!("{}", report.render_table());
    if options.heatmap {
        for cell in &report.cells {
            if cell.report.counts.wrong_result_undetected > 0 {
                println!(
                    "--- {} / {} / {} ---",
                    cell.workload, cell.pipeline, cell.model
                );
                println!("{}", cell.report.render_heatmap());
            }
        }
    }
}

/// The `--matrix` benchmark: one grid (2 workloads × variants × models),
/// first on the sequential per-cell path, then on the global scheduler, in
/// one session so both pay zero build time (the cache is pre-warmed) and
/// the scheduler starts with a cold trace store.
fn run_matrix_benchmark(
    options: &Options,
    pipelines: &[Pipeline],
    models: &[&dyn FaultModel],
    executor: &MatrixExecutor,
) {
    let workloads = [
        workload_by_name("integer_compare"),
        workload_by_name("password_check"),
    ];
    let mut session = Session::new();

    // Warm the build cache so neither path's campaign wall time pays for
    // compilation.
    let build_started = std::time::Instant::now();
    for workload in &workloads {
        for pipeline in pipelines {
            session
                .artifact(&workload.name, &workload.module, pipeline)
                .unwrap_or_else(|e| fail("build", &e));
        }
    }
    let build_micros = build_started.elapsed().as_micros() as u64;

    let sequential = session
        .security_matrix_sequential_with(
            &CampaignRunner::new().with_threads(1),
            &workloads,
            pipelines,
            models,
        )
        .unwrap_or_else(|e| fail("sequential security matrix", &e));
    let matrix = session
        .security_matrix_with(executor, &workloads, pipelines, models)
        .unwrap_or_else(|e| fail("matrix security matrix", &e));

    let identical = sequential == matrix && sequential.to_json() == matrix.to_json();
    if !identical {
        fail(
            "invariant",
            &"matrix executor output differs from the sequential path",
        );
    }
    let speedup = if matrix.stats.total_wall_micros == 0 {
        0.0
    } else {
        sequential.stats.total_wall_micros as f64 / matrix.stats.total_wall_micros as f64
    };

    if options.json {
        let cell_micros: Vec<String> = matrix
            .stats
            .cell_compute_micros
            .iter()
            .map(u64::to_string)
            .collect();
        println!(
            "{{\"grid\":{{\"workloads\":{},\"pipelines\":{},\"models\":{},\"cells\":{}}},\
             \"threads\":{},\"shard_size\":{},\"host_parallelism\":{},\"trials\":{},\
             \"max_steps\":{},\"build_micros\":{},\
             \"sequential\":{{\"wall_micros\":{},\"trace_hits\":0,\"trace_misses\":{}}},\
             \"matrix\":{{\"wall_micros\":{},\"trace_hits\":{},\"trace_misses\":{},\
             \"cell_compute_micros\":[{}]}},\
             \"speedup\":{:.3},\"identical\":true}}",
            matrix.workloads.len(),
            matrix.pipelines.len(),
            matrix.models.len(),
            matrix.cells.len(),
            executor.threads(),
            executor.shard_size(),
            std::thread::available_parallelism().map_or(1, usize::from),
            options.trials,
            options.effective_max_steps(),
            build_micros,
            sequential.stats.total_wall_micros,
            sequential.stats.trace_misses,
            matrix.stats.total_wall_micros,
            matrix.stats.trace_hits,
            matrix.stats.trace_misses,
            cell_micros.join(","),
            speedup,
        );
        return;
    }
    println!(
        "Matrix benchmark — {} cells ({} workloads × {} pipelines × {} models), \
         sampling budget {}",
        matrix.cells.len(),
        matrix.workloads.len(),
        matrix.pipelines.len(),
        matrix.models.len(),
        options.trials,
    );
    println!(
        "sequential path:  {:>10} µs  ({} trace recordings)",
        sequential.stats.total_wall_micros, sequential.stats.trace_misses,
    );
    println!(
        "matrix executor:  {:>10} µs  ({} threads, {} trace recordings, {} cache hits)",
        matrix.stats.total_wall_micros,
        executor.threads(),
        matrix.stats.trace_misses,
        matrix.stats.trace_hits,
    );
    println!("speedup: {speedup:.2}x  (reports byte-identical)");
}
