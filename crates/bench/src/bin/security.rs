//! Regenerates the Section VI security-analysis numbers: single-location
//! detectability and the multi-location fault-simulation sweep.

use secbranch_ancode::{hamming, Parameters, Predicate};
use secbranch_fault::ConditionCampaign;

fn main() {
    let params = Parameters::paper_defaults();
    let code = params.code();

    println!("Section VI — security analysis");
    println!();
    println!(
        "single-word error detection: min Hamming distance (difference-weight bound) = {} \
         -> detects up to {}-bit errors in one word",
        hamming::min_distance_upper_bound(&code, code.functional_max_exclusive()),
        hamming::detectable_bits(hamming::min_distance_upper_bound(
            &code,
            code.functional_max_exclusive()
        ))
    );
    println!(
        "condition-symbol distance: {} bits",
        params.symbol_distance()
    );
    println!();

    let trials = 2_000_000;
    println!(
        "multi-location fault simulation ({} trials per row, bits spread over the whole",
        trials
    );
    println!("condition computation; paper: <=3 bits always detected, 4 bits -> 0.0002% flips)");
    println!();
    println!(
        "{:>4} {:>12} {:>12} {:>16} {:>18}",
        "bits", "detected", "masked", "undetected flip", "flip rate"
    );
    for predicate in [Predicate::Eq, Predicate::Ult] {
        println!("predicate class: {predicate}");
        let mut campaign = ConditionCampaign::new(params, predicate, 2018);
        for (bits, counts) in campaign.sweep(6, trials) {
            println!(
                "{:>4} {:>12} {:>12} {:>16} {:>17.6}%",
                bits,
                counts.detected,
                counts.masked,
                counts.undetected_flip,
                counts.undetected_rate() * 100.0
            );
        }
    }
}
