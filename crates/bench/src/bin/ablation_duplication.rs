//! Ablation: overhead of the duplication baseline as a function of its order
//! (the paper fixes the order at six to match the 6-bit Hamming distance of
//! the AN-code).

use secbranch::programs::memcmp_module;
use secbranch::{measure, ProtectionVariant};

fn main() {
    println!("Ablation — duplication order vs overhead (memcmp, 128 elements)");
    println!();
    let module = memcmp_module(128);
    let baseline = measure(&module, ProtectionVariant::CfiOnly, "memcmp_bench", &[])
        .expect("baseline");
    let prototype = measure(&module, ProtectionVariant::AnCode, "memcmp_bench", &[])
        .expect("prototype");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "variant", "size/B", "size +%", "cycles", "cycles +%"
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "cfi", baseline.code_size_bytes, "-", baseline.result.cycles, "-"
    );
    for order in [2u32, 3, 4, 6, 8] {
        let m = measure(
            &module,
            ProtectionVariant::Duplication(order),
            "memcmp_bench",
            &[],
        )
        .expect("duplication");
        println!(
            "{:>12} {:>12} {:>12.2} {:>12} {:>12.2}",
            format!("dup x{order}"),
            m.code_size_bytes,
            m.size_overhead_percent(&baseline),
            m.result.cycles,
            m.runtime_overhead_percent(&baseline)
        );
    }
    println!(
        "{:>12} {:>12} {:>12.2} {:>12} {:>12.2}",
        "prototype",
        prototype.code_size_bytes,
        prototype.size_overhead_percent(&baseline),
        prototype.result.cycles,
        prototype.runtime_overhead_percent(&baseline)
    );
}
