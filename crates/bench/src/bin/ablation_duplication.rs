//! Ablation: overhead of the duplication baseline as a function of its order
//! (the paper fixes the order at six to match the 6-bit Hamming distance of
//! the AN-code).

use secbranch::passes::DuplicationConfig;
use secbranch::programs::memcmp_module;
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn main() {
    println!("Ablation — duplication order vs overhead (memcmp, 128 elements)");
    println!();

    let mut pipelines = vec![Pipeline::for_variant(ProtectionVariant::CfiOnly)];
    for order in [2u32, 3, 4, 6, 8] {
        pipelines.push(
            Pipeline::new()
                .with_full_cfi()
                .with_duplication(DuplicationConfig {
                    order,
                    ..DuplicationConfig::default()
                })
                .with_label(format!("dup x{order}")),
        );
    }
    pipelines.push(Pipeline::for_variant(ProtectionVariant::AnCode));

    let workloads = [Workload::new(
        "memcmp",
        memcmp_module(128),
        "memcmp_bench",
        &[],
    )];
    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");

    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "variant", "size/B", "size +%", "cycles", "cycles +%"
    );
    for cell in &report.cells {
        let fmt_pct = |p: Option<f64>| match p {
            Some(p) => format!("{p:.2}"),
            None => "-".to_string(),
        };
        println!(
            "{:>12} {:>12} {:>12} {:>12} {:>12}",
            cell.pipeline,
            cell.measurement.code_size_bytes,
            fmt_pct(cell.size_overhead_percent),
            cell.measurement.result.cycles,
            fmt_pct(cell.runtime_overhead_percent),
        );
    }
    println!();
    println!(
        "{} cells from {} compilations (memcmp compiled once per pipeline)",
        report.cells.len(),
        session.builds(),
    );
}
