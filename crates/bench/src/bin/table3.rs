//! Regenerates Table III: size and runtime overhead of the branch-protection
//! variants on the integer-compare and memcmp micro-benchmarks and the
//! secure-bootloader macro-benchmark.

use secbranch::programs::{bootloader_module, integer_compare_module, memcmp_module, BootImage};
use secbranch::{measure, ProtectionVariant};
use secbranch_bench::print_table3_block;

fn main() {
    println!("Table III — size and runtime of CFI baseline vs duplication (x6) vs prototype");
    println!("(columns: CFI absolute | duplication abs (+%) | prototype abs (+%))");
    println!();

    let variants = ProtectionVariant::TABLE_THREE;

    // integer compare micro-benchmark.
    let module = integer_compare_module();
    let rows: Vec<_> = variants
        .iter()
        .map(|v| measure(&module, *v, "integer_compare", &[1234, 1234]).expect("integer compare"))
        .collect();
    print_table3_block("integer compare", &rows[0], &[&rows[1], &rows[2]]);

    // memcmp with 128 elements.
    let module = memcmp_module(128);
    let rows: Vec<_> = variants
        .iter()
        .map(|v| measure(&module, *v, "memcmp_bench", &[]).expect("memcmp"))
        .collect();
    print_table3_block("memcmp (128)", &rows[0], &[&rows[1], &rows[2]]);

    // Secure bootloader macro-benchmark (4 KiB firmware image). The paper
    // reports only CFI and prototype for the bootloader.
    let image = BootImage::generate(4096, 2018);
    let module = bootloader_module(&image);
    let baseline =
        measure(&module, ProtectionVariant::CfiOnly, "bootloader", &[]).expect("bootloader cfi");
    let prototype =
        measure(&module, ProtectionVariant::AnCode, "bootloader", &[]).expect("bootloader an");
    print_table3_block("bootloader", &baseline, &[&prototype]);

    assert_eq!(baseline.result.return_value, secbranch::programs::BOOT_OK);
    assert_eq!(prototype.result.return_value, secbranch::programs::BOOT_OK);
    println!();
    println!(
        "bootloader prototype overhead: size {:+.3}%, runtime {:+.4}%",
        prototype.size_overhead_percent(&baseline),
        prototype.runtime_overhead_percent(&baseline)
    );
}
