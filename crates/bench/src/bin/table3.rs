//! Regenerates Table III: size and runtime overhead of the branch-protection
//! variants on the integer-compare and memcmp micro-benchmarks, the password
//! check and the secure-bootloader macro-benchmark.
//!
//! Variants can be passed as CLI arguments (`cfi`, `"duplication(x6)"`,
//! `prototype`, ...); the first one is the overhead baseline. Pass `--json`
//! to additionally dump the structured report.

use secbranch::programs::{
    bootloader_module, integer_compare_module, memcmp_module, password_check_module, BootImage,
    BOOT_OK,
};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};
use secbranch_bench::variants_from_args;

fn main() {
    let variants = variants_from_args(&ProtectionVariant::TABLE_THREE, &["--json"]);
    let pipelines: Vec<Pipeline> = variants.iter().map(|v| Pipeline::for_variant(*v)).collect();

    let image = BootImage::generate(4096, 2018);
    let workloads = [
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 1234],
        ),
        Workload::new("memcmp (128)", memcmp_module(128), "memcmp_bench", &[]),
        Workload::new(
            "password (16)",
            password_check_module(16),
            "password_check",
            &[],
        ),
        Workload::new("bootloader", bootloader_module(&image), "bootloader", &[]),
    ];

    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");

    let labels: Vec<String> = variants.iter().map(|v| v.label()).collect();
    println!("Table III — size and runtime, baseline = {}", labels[0]);
    println!("(columns: baseline absolute | others absolute (+overhead%))");
    println!("variants: {}", labels.join(" | "));
    println!();
    print!("{}", report.render_table());
    println!();
    println!(
        "{} modules x {} pipelines = {} cells from {} compilations ({} cache hits)",
        workloads.len(),
        pipelines.len(),
        report.cells.len(),
        session.builds(),
        session.cache_hits(),
    );

    let boot = report
        .cell("bootloader", &labels[0])
        .expect("bootloader baseline cell");
    assert_eq!(boot.measurement.result.return_value, BOOT_OK);
    if let Some(prototype) = report.cell("bootloader", "prototype") {
        assert_eq!(prototype.measurement.result.return_value, BOOT_OK);
        // Baseline cells carry no overheads (prototype may *be* the baseline).
        if let (Some(size), Some(runtime)) = (
            prototype.size_overhead_percent,
            prototype.runtime_overhead_percent,
        ) {
            println!("bootloader prototype overhead: size {size:+.3}%, runtime {runtime:+.4}%");
        }
    }

    if std::env::args().any(|a| a == "--json") {
        println!();
        println!("{}", report.to_json());
    }
}
