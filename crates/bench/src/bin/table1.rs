//! Regenerates Table I: condition values for the encoded comparisons.

use secbranch_ancode::{Parameters, Predicate};

fn main() {
    let params = Parameters::paper_defaults();
    println!(
        "Table I — condition values (A = {}, C_ord = {}, C_eq = {})",
        params.code().constant(),
        params.ordering_constant(),
        params.equality_constant()
    );
    println!("2^32 mod A = {}", params.wraparound_residue());
    println!();
    println!(
        "{:<10} {:<28} {:>12} {:>12} {:>10}",
        "predicate", "subtraction", "true", "false", "distance"
    );
    for pred in Predicate::ALL {
        let row = params.table_one_row(pred);
        let symbols = params.symbols(pred);
        println!(
            "{:<10} {:<28} {:>12} {:>12} {:>10}",
            pred.symbol(),
            row.subtraction,
            row.true_value,
            row.false_value,
            symbols.hamming_distance()
        );
    }
}
