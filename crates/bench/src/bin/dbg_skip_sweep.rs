//! Debug helper: prints the program listing of the protected integer compare
//! and every dynamic instruction whose skip flips the decision undetected.
//!
//! Unlike the aggregate numbers of the `security` binary and
//! `Artifact::skip_sweep`, this lists the individual offending steps, which
//! is what one actually needs when tightening the protection.

use secbranch::armv7m::{FaultAction, FaultHook, Instr, Machine};
use secbranch::programs::integer_compare_module;
use secbranch::{Pipeline, ProtectionVariant};

struct SkipAt(u64);

impl FaultHook for SkipAt {
    fn before_execute(&mut self, step: u64, _: usize, _: &Instr, _: &mut Machine) -> FaultAction {
        if step == self.0 {
            FaultAction::Skip
        } else {
            FaultAction::Continue
        }
    }
}

fn main() {
    let artifact = Pipeline::for_variant(ProtectionVariant::AnCode)
        .with_memory_size(64 * 1024)
        .with_max_steps(1_000_000)
        .build(&integer_compare_module())
        .expect("builds");

    let reference = artifact
        .run("integer_compare", &[1234, 4321])
        .expect("reference runs");
    println!("ref = {reference:?}");
    println!("{}", artifact.simulator().program().listing());

    for step in 1..=reference.instructions {
        let mut sim = artifact.simulator();
        let r = sim.call_with_faults(
            "integer_compare",
            &[1234, 4321],
            artifact.sim().max_steps,
            &mut SkipAt(step),
        );
        if let Ok(r) = r {
            if r.cfi_violations == 0 && r.return_value != reference.return_value {
                println!("step {} -> wrong undetected, ret {}", step, r.return_value);
            }
        }
    }
}
