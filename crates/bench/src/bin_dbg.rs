use secbranch_codegen::{compile, CfiLevel, CodegenOptions};
use secbranch_passes::{standard_protection_pipeline, AnCoderConfig};
use secbranch_programs::integer_compare_module;
fn main() {
    let mut module = integer_compare_module();
    standard_protection_pipeline(AnCoderConfig::default()).run(&mut module).unwrap();
    let compiled = compile(&module, &CodegenOptions { cfi: CfiLevel::Full }).unwrap();
    let sim0 = compiled.into_simulator(64 * 1024);
    let mut rsim = sim0.clone();
    let reference = rsim.call("integer_compare", &[1234, 4321], 1_000_000).unwrap();
    println!("ref = {:?}", reference);
    println!("{}", rsim.program().listing());
    for step in 1..=reference.instructions {
        struct SkipAt(u64);
        impl secbranch_armv7m::FaultHook for SkipAt {
            fn before_execute(&mut self, step: u64, _: usize, _: &secbranch_armv7m::Instr, _: &mut secbranch_armv7m::Machine) -> secbranch_armv7m::FaultAction {
                if step == self.0 { secbranch_armv7m::FaultAction::Skip } else { secbranch_armv7m::FaultAction::Continue }
            }
        }
        let mut sim = sim0.clone();
        let r = sim.call_with_faults("integer_compare", &[1234, 4321], 1_000_000, &mut SkipAt(step));
        if let Ok(r) = r {
            if r.cfi_violations == 0 && r.return_value != reference.return_value {
                println!("step {} -> wrong undetected, ret {}", step, r.return_value);
            }
        }
    }
}
