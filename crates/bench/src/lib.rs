//! Shared helpers for the table-regeneration binaries of the benchmark
//! harness (`table1`, `table2`, `table3`, `security`, `ablation_modulo`,
//! `ablation_duplication`). See `EXPERIMENTS.md` for the mapping between
//! binaries and the paper's tables/figures.

#![forbid(unsafe_code)]

use secbranch::Measurement;

/// Formats one Table III style cell: absolute value plus overhead percentage
/// against the CFI baseline.
#[must_use]
pub fn overhead_cell(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.0} ({:+.3}%)", (value - baseline) / baseline * 100.0)
    }
}

/// Prints a Table III block (size and runtime rows) for one benchmark.
pub fn print_table3_block(benchmark: &str, baseline: &Measurement, others: &[&Measurement]) {
    let mut size_row = format!(
        "{benchmark:<16} size/B    {:>10}",
        baseline.code_size_bytes
    );
    let mut time_row = format!(
        "{benchmark:<16} cycles    {:>10}",
        baseline.result.cycles
    );
    for m in others {
        size_row.push_str(&format!(
            " | {:>22}",
            overhead_cell(m.code_size_bytes as f64, baseline.code_size_bytes as f64)
        ));
        time_row.push_str(&format!(
            " | {:>22}",
            overhead_cell(m.result.cycles as f64, baseline.result.cycles as f64)
        ));
    }
    println!("{size_row}");
    println!("{time_row}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cell_formats_percentages() {
        assert_eq!(overhead_cell(110.0, 100.0), "110 (+10.000%)");
        assert_eq!(overhead_cell(50.0, 0.0), "50");
    }
}
