//! Shared helpers for the table-regeneration binaries of the benchmark
//! harness (`table1`, `table2`, `table3`, `security`, `ablation_modulo`,
//! `ablation_duplication`). See `EXPERIMENTS.md` for the mapping between
//! binaries and the paper's tables/figures.
//!
//! The overhead arithmetic and formatting live in the `secbranch` facade
//! ([`Measurement`](secbranch::Measurement) methods and
//! [`overhead_cell`]); this crate only adds the
//! CLI plumbing of the binaries and the host-side micro-benchmark harness
//! used by the `benches/` targets (the offline build has no criterion).

#![forbid(unsafe_code)]

use std::process::exit;

// The single home of the Table III cell formatting, re-exported so the
// binaries only need the harness crate.
pub use secbranch::overhead_cell;
use secbranch::ProtectionVariant;

/// Parses the binaries' CLI arguments into protection variants using
/// [`ProtectionVariant`]'s `FromStr` labels (`unprotected`, `cfi`,
/// `duplication(xN)`, `prototype`). Without variant arguments, returns
/// `default`. `known_flags` lists the `--` flags the binary handles itself
/// (e.g. `--json`); those are skipped here, while unknown flags print a
/// usage message and exit so typos are not silently ignored.
#[must_use]
pub fn variants_from_args(
    default: &[ProtectionVariant],
    known_flags: &[&str],
) -> Vec<ProtectionVariant> {
    let usage = |message: &str| -> ! {
        eprintln!("{message}");
        eprintln!(
            "usage: pass variant labels as arguments, e.g. cfi \"duplication(x6)\" prototype"
        );
        if !known_flags.is_empty() {
            eprintln!("flags: {}", known_flags.join(" "));
        }
        exit(2);
    };
    let mut variants = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg.starts_with("--") {
            if !known_flags.contains(&arg.as_str()) {
                usage(&format!("unknown flag {arg:?}"));
            }
            continue;
        }
        match arg.parse::<ProtectionVariant>() {
            Ok(variant) => variants.push(variant),
            Err(e) => usage(&e.to_string()),
        }
    }
    if variants.is_empty() {
        default.to_vec()
    } else {
        variants
    }
}

/// A minimal host-side micro-benchmark harness: warm-up, then timed batches,
/// reporting ns/iteration. Stands in for criterion in the offline build; the
/// `benches/` targets run it with `harness = false`.
pub mod micro {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Runs `f` repeatedly and prints `name: <ns>/iter (<iters> iters)`.
    ///
    /// The routine warms up for ~50 ms, sizes a batch to ~200 ms, times it,
    /// and reports the mean. No statistics beyond that — the guest-cycle
    /// numbers of the tables are the precise ones; this harness only tracks
    /// host-side compile/simulate throughput.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        // Warm-up and calibration: how many iterations fit in ~50 ms?
        let calibration_start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while calibration_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            calibration_iters += 1;
        }
        let per_iter = calibration_start.elapsed().as_nanos() / u128::from(calibration_iters);
        let iters = (200_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        println!("{name:<44} {ns_per_iter:>14.1} ns/iter   ({iters} iters)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cell_formats_percentages() {
        // The formatter now lives in `secbranch`; this pins the re-exported
        // behaviour the binaries rely on.
        assert_eq!(overhead_cell(110.0, 100.0), "110 (+10.000%)");
        assert_eq!(overhead_cell(50.0, 0.0), "50");
    }

    #[test]
    fn micro_bench_runs() {
        micro::bench("test/noop", || 1 + 1);
    }
}
