//! A convenience builder for constructing IR functions.
//!
//! The builder keeps track of the "current" block; instruction-emitting
//! methods append to it and return the defined value. Terminator methods
//! close the current block. See the crate-level example.

use crate::function::Function;
use crate::inst::{
    BinOp, BlockId, BranchProtection, Inst, LocalId, MemWidth, Op, Operand, Predicate, Terminator,
    ValueId,
};

/// Builder for a single [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    function: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts building a function with `param_count` parameters; the current
    /// block is the entry block.
    #[must_use]
    pub fn new(name: impl Into<String>, param_count: usize) -> Self {
        let function = Function::new(name, param_count);
        let current = function.entry();
        FunctionBuilder { function, current }
    }

    /// Marks the function with the paper's `protect_branches` attribute.
    pub fn protect_branches(&mut self) -> &mut Self {
        self.function.attrs.protect_branches = true;
        self
    }

    /// The `index`-th parameter as an operand.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn param(&self, index: usize) -> Operand {
        Operand::Value(self.function.params[index])
    }

    /// Declares a stack slot of `size_bytes` bytes.
    pub fn local(&mut self, name: impl Into<String>, size_bytes: u32) -> LocalId {
        self.function.add_local(name, size_bytes)
    }

    /// Creates a new block (does not switch to it).
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.function.add_block(name)
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The current insertion block.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, op: Op) -> ValueId {
        let result = self.function.fresh_value();
        self.function.block_mut(self.current).insts.push(Inst {
            result: Some(result),
            op,
        });
        result
    }

    fn push_void(&mut self, op: Op) {
        self.function
            .block_mut(self.current)
            .insts
            .push(Inst { result: None, op });
    }

    /// Emits a binary operation and returns its result.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Operand {
        Operand::Value(self.push(Op::Bin {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }))
    }

    /// Emits a comparison producing 0 or 1.
    pub fn cmp(
        &mut self,
        pred: Predicate,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Operand {
        Operand::Value(self.push(Op::Cmp {
            pred,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }))
    }

    /// Emits a select.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        if_true: impl Into<Operand>,
        if_false: impl Into<Operand>,
    ) -> Operand {
        Operand::Value(self.push(Op::Select {
            cond: cond.into(),
            if_true: if_true.into(),
            if_false: if_false.into(),
        }))
    }

    /// Emits a word load.
    pub fn load(&mut self, addr: impl Into<Operand>) -> Operand {
        Operand::Value(self.push(Op::Load {
            addr: addr.into(),
            width: MemWidth::Word,
        }))
    }

    /// Emits a byte load.
    pub fn load_byte(&mut self, addr: impl Into<Operand>) -> Operand {
        Operand::Value(self.push(Op::Load {
            addr: addr.into(),
            width: MemWidth::Byte,
        }))
    }

    /// Emits a word store.
    pub fn store(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.push_void(Op::Store {
            addr: addr.into(),
            value: value.into(),
            width: MemWidth::Word,
        });
    }

    /// Emits a byte store.
    pub fn store_byte(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) {
        self.push_void(Op::Store {
            addr: addr.into(),
            value: value.into(),
            width: MemWidth::Byte,
        });
    }

    /// Emits the address of a stack slot.
    pub fn local_addr(&mut self, local: LocalId) -> Operand {
        Operand::Value(self.push(Op::LocalAddr { local }))
    }

    /// Emits the address of a module global.
    pub fn global_addr(&mut self, name: impl Into<String>) -> Operand {
        Operand::Value(self.push(Op::GlobalAddr { name: name.into() }))
    }

    /// Emits a call; the result is the callee's return value.
    pub fn call(&mut self, callee: impl Into<String>, args: &[Operand]) -> Operand {
        Operand::Value(self.push(Op::Call {
            callee: callee.into(),
            args: args.to_vec(),
        }))
    }

    /// Emits the paper's encoded comparison (normally inserted by the AN
    /// Coder pass, but exposed for hand-written protected code and tests).
    pub fn encoded_compare(
        &mut self,
        pred: Predicate,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        a: u32,
        c: u32,
    ) -> Operand {
        Operand::Value(self.push(Op::EncodedCompare {
            pred,
            lhs: lhs.into(),
            rhs: rhs.into(),
            a,
            c,
        }))
    }

    /// Convenience: loads a local scalar (word) variable.
    pub fn load_local(&mut self, local: LocalId) -> Operand {
        let addr = self.local_addr(local);
        self.load(addr)
    }

    /// Convenience: stores to a local scalar (word) variable.
    pub fn store_local(&mut self, local: LocalId, value: impl Into<Operand>) {
        let addr = self.local_addr(local);
        self.store(addr, value);
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: impl Into<Operand>, if_true: BlockId, if_false: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            if_true,
            if_false,
            protection: None,
        });
    }

    /// Terminates the current block with a *protected* conditional branch
    /// (used by hand-written protected code and tests; the AN Coder pass
    /// produces the same shape automatically).
    pub fn protected_branch(
        &mut self,
        cond: impl Into<Operand>,
        if_true: BlockId,
        if_false: BlockId,
        protection: BranchProtection,
    ) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            if_true,
            if_false,
            protection: Some(protection),
        });
    }

    /// Terminates the current block with a switch.
    pub fn switch(
        &mut self,
        value: impl Into<Operand>,
        default: BlockId,
        cases: &[(u32, BlockId)],
    ) {
        self.terminate(Terminator::Switch {
            value: value.into(),
            default,
            cases: cases.to_vec(),
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    fn terminate(&mut self, terminator: Terminator) {
        let block = self.function.block_mut(self.current);
        assert!(
            block.terminator.is_none(),
            "block '{}' already has a terminator",
            block.name
        );
        block.terminator = Some(terminator);
    }

    /// Finishes building and returns the function.
    ///
    /// # Panics
    ///
    /// Panics if any block is missing a terminator — such a function would be
    /// rejected by the verifier anyway, and panicking here points at the
    /// builder call site instead.
    #[must_use]
    pub fn finish(self) -> Function {
        for block in &self.function.blocks {
            assert!(
                block.terminator.is_some(),
                "block '{}' of function '{}' has no terminator",
                block.name,
                self.function.name
            );
        }
        self.function
    }

    /// Finishes building without the terminator check (for tests that
    /// deliberately construct malformed functions).
    #[must_use]
    pub fn finish_unchecked(self) -> Function {
        self.function
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut b = FunctionBuilder::new("addmul", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.bin(BinOp::Add, x, y);
        let p = b.bin(BinOp::Mul, s, 3u32);
        b.ret(Some(p));
        let f = b.finish();
        assert_eq!(f.name, "addmul");
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn loop_with_local_counter() {
        // for (i = 0; i < 10; i++) {}
        let mut b = FunctionBuilder::new("count", 0);
        let i = b.local("i", 4);
        b.store_local(i, 0u32);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let iv = b.load_local(i);
        let c = b.cmp(Predicate::Ult, iv, 10u32);
        b.branch(c, body, exit);
        b.switch_to(body);
        let iv = b.load_local(i);
        let next = b.bin(BinOp::Add, iv, 1u32);
        b.store_local(i, next);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.conditional_branches().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already has a terminator")]
    fn double_termination_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn finish_checks_termination() {
        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.create_block("dangling");
        b.ret(None);
        let _ = b.finish();
    }

    #[test]
    fn finish_unchecked_allows_malformed() {
        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.create_block("dangling");
        b.ret(None);
        let f = b.finish_unchecked();
        assert_eq!(f.blocks.len(), 2);
    }

    #[test]
    fn protected_branch_carries_metadata() {
        let mut b = FunctionBuilder::new("f", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t = b.create_block("t");
        let e = b.create_block("e");
        let cond = b.encoded_compare(Predicate::Eq, x, y, 63_877, 14_991);
        let flag = b.cmp(Predicate::Eq, cond, 29_982u32);
        b.protected_branch(
            flag,
            t,
            e,
            BranchProtection {
                condition: cond,
                true_symbol: 29_982,
                false_symbol: 35_552,
            },
        );
        b.switch_to(t);
        b.ret(Some(Operand::Const(1)));
        b.switch_to(e);
        b.ret(Some(Operand::Const(0)));
        let f = b.finish();
        match &f.block(BlockId(0)).terminator {
            Some(Terminator::Branch {
                protection: Some(p),
                ..
            }) => {
                assert_eq!(p.true_symbol, 29_982);
                assert_eq!(p.false_symbol, 35_552);
            }
            other => panic!("expected protected branch, found {other:?}"),
        }
    }
}
