//! Structural verification of IR modules.
//!
//! The verifier checks the invariants the rest of the pipeline relies on:
//!
//! * every block has exactly one terminator and all targets exist,
//! * every used value is defined (by a parameter or an instruction) and its
//!   definition dominates the use,
//! * values are defined at most once,
//! * locals and globals referenced by instructions exist,
//! * calls target functions that exist in the module and pass the right
//!   number of arguments,
//! * protected branches reference a condition value that is defined.

use std::collections::{HashMap, HashSet};

use crate::cfg::{Cfg, Dominators};
use crate::error::IrError;
use crate::function::{Function, Module};
use crate::inst::{BlockId, Op, Operand, Terminator, ValueId};

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first [`IrError::Verification`] found.
pub fn verify_module(module: &Module) -> Result<(), IrError> {
    for function in &module.functions {
        verify_function(module, function)?;
    }
    Ok(())
}

/// Verifies a single function against its containing module.
///
/// # Errors
///
/// Returns the first [`IrError::Verification`] found.
pub fn verify_function(module: &Module, function: &Function) -> Result<(), IrError> {
    let err = |msg: String| Err(IrError::verification(&function.name, msg));

    if function.blocks.is_empty() {
        return err("function has no blocks".to_string());
    }

    // Pass 1: collect definitions and check blocks/terminators.
    let mut def_block: HashMap<ValueId, BlockId> = HashMap::new();
    let mut def_index: HashMap<ValueId, usize> = HashMap::new();
    for &p in &function.params {
        def_block.insert(p, function.entry());
        def_index.insert(p, 0);
    }
    let block_count = function.blocks.len() as u32;
    for (bid, block) in function.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.op.has_result() != inst.result.is_some() {
                return err(format!(
                    "instruction {i} in block '{}' has a result mismatch",
                    block.name
                ));
            }
            if let Some(r) = inst.result {
                if def_block.insert(r, bid).is_some() {
                    return err(format!("value {r} is defined more than once"));
                }
                def_index.insert(r, i + 1);
            }
        }
        let Some(term) = &block.terminator else {
            return err(format!("block '{}' has no terminator", block.name));
        };
        for target in term.successors() {
            if target.0 >= block_count {
                return err(format!(
                    "block '{}' branches to non-existent block {target}",
                    block.name
                ));
            }
        }
    }

    // Pass 2: uses — check existence, local/global/call validity and
    // dominance of definitions over uses.
    let cfg = Cfg::new(function);
    let doms = Dominators::new(&cfg);
    let local_count = function.locals.len() as u32;
    let global_names: HashSet<&str> = module.globals.iter().map(|g| g.name.as_str()).collect();

    let check_operand =
        |operand: Operand, use_block: BlockId, use_index: usize| -> Result<(), IrError> {
            let Operand::Value(v) = operand else {
                return Ok(());
            };
            let Some(&dblock) = def_block.get(&v) else {
                return Err(IrError::verification(
                    &function.name,
                    format!("use of undefined value {v}"),
                ));
            };
            let dindex = def_index[&v];
            let dominates = if dblock == use_block {
                dindex <= use_index
            } else {
                doms.dominates(dblock, use_block)
            };
            if !dominates && doms.is_reachable(use_block) {
                return Err(IrError::verification(
                    &function.name,
                    format!("definition of {v} does not dominate its use in {use_block}"),
                ));
            }
            Ok(())
        };

    for (bid, block) in function.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            for operand in inst.op.operands() {
                check_operand(operand, bid, i)?;
            }
            match &inst.op {
                Op::LocalAddr { local } if local.0 >= local_count => {
                    return err(format!("reference to non-existent local {local}"));
                }
                Op::GlobalAddr { name } if !global_names.contains(name.as_str()) => {
                    return err(format!("reference to non-existent global '{name}'"));
                }
                Op::Call { callee, args } => {
                    let Some(target) = module.function(callee) else {
                        return err(format!("call to non-existent function '{callee}'"));
                    };
                    if target.params.len() != args.len() {
                        return err(format!(
                            "call to '{callee}' passes {} arguments, expected {}",
                            args.len(),
                            target.params.len()
                        ));
                    }
                }
                _ => {}
            }
        }
        if let Some(term) = &block.terminator {
            let term_index = block.insts.len();
            for operand in term.operands() {
                check_operand(operand, bid, term_index)?;
            }
            if let Terminator::Branch {
                protection: Some(p),
                ..
            } = term
            {
                if p.true_symbol == p.false_symbol {
                    return err(format!(
                        "protected branch in block '{}' has identical condition symbols",
                        block.name
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Inst, Predicate};

    fn module_with(f: Function) -> Module {
        let mut m = Module::new();
        m.add_function(f);
        m
    }

    #[test]
    fn accepts_well_formed_function() {
        let mut b = FunctionBuilder::new("ok", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        assert!(verify_module(&module_with(b.finish())).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut b = FunctionBuilder::new("f", 0);
        let dangling = b.create_block("dangling");
        b.ret(None);
        b.switch_to(dangling);
        let f = b.finish_unchecked();
        let e = verify_module(&module_with(f)).expect_err("must fail");
        assert!(e.to_string().contains("no terminator"));
    }

    #[test]
    fn rejects_use_of_undefined_value() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(Some(Operand::Value(ValueId(99))));
        let e = verify_module(&module_with(b.finish())).expect_err("must fail");
        assert!(e.to_string().contains("undefined value"));
    }

    #[test]
    fn rejects_use_before_definition_in_same_block() {
        let mut f = Function::new("f", 0);
        let v = f.fresh_value();
        let w = f.fresh_value();
        let entry = f.entry();
        // %w = add %v, 1   (uses %v before it is defined)
        // %v = add 1, 1
        f.block_mut(entry).insts.push(Inst {
            result: Some(w),
            op: Op::Bin {
                op: BinOp::Add,
                lhs: Operand::Value(v),
                rhs: Operand::Const(1),
            },
        });
        f.block_mut(entry).insts.push(Inst {
            result: Some(v),
            op: Op::Bin {
                op: BinOp::Add,
                lhs: Operand::Const(1),
                rhs: Operand::Const(1),
            },
        });
        f.block_mut(entry).terminator = Some(Terminator::Ret(None));
        let e = verify_module(&module_with(f)).expect_err("must fail");
        assert!(e.to_string().contains("does not dominate"));
    }

    #[test]
    fn rejects_definition_that_does_not_dominate_cross_block_use() {
        // entry branches to {a, b}; a defines %v; b uses %v.
        let mut b = FunctionBuilder::new("f", 1);
        let p = b.param(0);
        let a_bb = b.create_block("a");
        let b_bb = b.create_block("b");
        let c = b.cmp(Predicate::Ne, p, 0u32);
        b.branch(c, a_bb, b_bb);
        b.switch_to(a_bb);
        let v = b.bin(BinOp::Add, p, 1u32);
        b.ret(Some(v));
        b.switch_to(b_bb);
        b.ret(Some(v));
        let e = verify_module(&module_with(b.finish())).expect_err("must fail");
        assert!(e.to_string().contains("does not dominate"));
    }

    #[test]
    fn accepts_definition_dominating_both_arms() {
        let mut b = FunctionBuilder::new("f", 1);
        let p = b.param(0);
        let a_bb = b.create_block("a");
        let b_bb = b.create_block("b");
        let v = b.bin(BinOp::Add, p, 1u32);
        let c = b.cmp(Predicate::Ne, p, 0u32);
        b.branch(c, a_bb, b_bb);
        b.switch_to(a_bb);
        b.ret(Some(v));
        b.switch_to(b_bb);
        b.ret(Some(v));
        assert!(verify_module(&module_with(b.finish())).is_ok());
    }

    #[test]
    fn rejects_dangling_block_target() {
        let mut f = Function::new("f", 0);
        f.block_mut(BlockId(0)).terminator = Some(Terminator::Jump(BlockId(7)));
        let e = verify_module(&module_with(f)).expect_err("must fail");
        assert!(e.to_string().contains("non-existent block"));
    }

    #[test]
    fn rejects_unknown_local_global_and_call() {
        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.local_addr(crate::inst::LocalId(3));
        b.ret(None);
        let e = verify_module(&module_with(b.finish())).expect_err("must fail");
        assert!(e.to_string().contains("non-existent local"));

        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.global_addr("nope");
        b.ret(None);
        let e = verify_module(&module_with(b.finish())).expect_err("must fail");
        assert!(e.to_string().contains("non-existent global"));

        let mut b = FunctionBuilder::new("f", 0);
        let _ = b.call("missing", &[]);
        b.ret(None);
        let e = verify_module(&module_with(b.finish())).expect_err("must fail");
        assert!(e.to_string().contains("non-existent function"));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut callee = FunctionBuilder::new("callee", 2);
        callee.ret(None);
        let mut caller = FunctionBuilder::new("caller", 0);
        let _ = caller.call("callee", &[Operand::Const(1)]);
        caller.ret(None);
        let mut m = Module::new();
        m.add_function(callee.finish());
        m.add_function(caller.finish());
        let e = verify_module(&m).expect_err("must fail");
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn rejects_double_definition() {
        let mut f = Function::new("f", 0);
        let v = f.fresh_value();
        let entry = f.entry();
        for _ in 0..2 {
            f.block_mut(entry).insts.push(Inst {
                result: Some(v),
                op: Op::Bin {
                    op: BinOp::Add,
                    lhs: Operand::Const(1),
                    rhs: Operand::Const(1),
                },
            });
        }
        f.block_mut(entry).terminator = Some(Terminator::Ret(None));
        let e = verify_module(&module_with(f)).expect_err("must fail");
        assert!(e.to_string().contains("more than once"));
    }

    #[test]
    fn rejects_protected_branch_with_identical_symbols() {
        let mut b = FunctionBuilder::new("f", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t = b.create_block("t");
        let e_bb = b.create_block("e");
        let cond = b.encoded_compare(Predicate::Eq, x, y, 63_877, 14_991);
        let flag = b.cmp(Predicate::Eq, cond, 29_982u32);
        b.protected_branch(
            flag,
            t,
            e_bb,
            crate::inst::BranchProtection {
                condition: cond,
                true_symbol: 1,
                false_symbol: 1,
            },
        );
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e_bb);
        b.ret(None);
        let e = verify_module(&module_with(b.finish())).expect_err("must fail");
        assert!(e.to_string().contains("identical condition symbols"));
    }
}
