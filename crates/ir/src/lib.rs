//! A small compiler intermediate representation (IR) for the secbranch
//! pipeline.
//!
//! The paper implements its transformations as LLVM passes; this crate
//! provides the minimal substrate those transformations actually need
//! (see `DESIGN.md` for the substitution rationale):
//!
//! * a register-style IR with unlimited virtual values, explicit basic
//!   blocks, conditional branches, switches, selects and memory operations
//!   through function-local stack slots and module globals
//!   ([`Module`], [`Function`], [`Block`], [`Inst`]),
//! * a [`builder`] API for constructing functions programmatically (used by
//!   the guest workloads in `secbranch-programs`),
//! * a [`verify`] pass checking structural well-formedness (definitions
//!   dominate uses, terminators target existing blocks, …),
//! * a reference [`interp`]reter giving the IR its ground-truth semantics,
//!   used to cross-check both the transformation passes and the ARMv7-M
//!   back end,
//! * a textual [`printer`] and [`parser`] for a human-readable exchange
//!   format, and
//! * [`cfg`](mod@cfg) utilities (successors, predecessors, reverse post-order,
//!   dominators) shared by the passes and the CFI instrumentation.
//!
//! The IR deliberately models an *unoptimised* (`-O0`-style) program: local
//! variables live in stack slots and loops update them through load/store,
//! which is the shape the paper's Loop Decoupler and AN Coder passes operate
//! on.
//!
//! # Example
//!
//! ```
//! use secbranch_ir::builder::FunctionBuilder;
//! use secbranch_ir::{BinOp, Module, Operand, Predicate};
//!
//! # fn main() -> Result<(), secbranch_ir::IrError> {
//! // fn max_plus_one(a, b) { if a > b { a + 1 } else { b + 1 } }
//! let mut b = FunctionBuilder::new("max_plus_one", 2);
//! let (a, x) = (b.param(0), b.param(1));
//! let then_bb = b.create_block("then");
//! let else_bb = b.create_block("else");
//! let cond = b.cmp(Predicate::Ugt, a, x);
//! b.branch(cond, then_bb, else_bb);
//! b.switch_to(then_bb);
//! let r = b.bin(BinOp::Add, a, Operand::Const(1));
//! b.ret(Some(r));
//! b.switch_to(else_bb);
//! let r = b.bin(BinOp::Add, x, Operand::Const(1));
//! b.ret(Some(r));
//!
//! let mut module = Module::new();
//! module.add_function(b.finish());
//! secbranch_ir::verify::verify_module(&module)?;
//!
//! let result = secbranch_ir::interp::run(&module, "max_plus_one", &[41, 7])?;
//! assert_eq!(result.return_value, Some(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
mod error;
mod function;
mod inst;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod verify;

pub use error::IrError;
pub use function::{all_operands, Block, Function, FunctionAttrs, Global, Local, Module};
pub use inst::{
    BinOp, BlockId, BranchProtection, Inst, LocalId, MemWidth, Op, Operand, Predicate, Terminator,
    ValueId,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Module>();
        assert_send_sync::<Function>();
        assert_send_sync::<Inst>();
        assert_send_sync::<Terminator>();
        assert_send_sync::<IrError>();
    }
}
