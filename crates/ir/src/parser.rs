//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The grammar is line-oriented:
//!
//! ```text
//! global @name (mutable|const) <hex bytes or '-'>
//! func @name(%0, %1, ...) [protect_branches] {
//!   local $l<N> <size> "<name>"
//! bb<N>:  ; optional comment
//!   %<N> = <op> ...
//!   <terminator>
//! }
//! ```

use std::collections::HashMap;

use crate::error::IrError;
use crate::function::{Function, Module};
use crate::inst::{
    BinOp, BlockId, BranchProtection, Inst, LocalId, MemWidth, Op, Operand, Predicate, Terminator,
    ValueId,
};

/// Parses a module from its textual representation.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number and message on malformed
/// input.
pub fn parse_module(text: &str) -> Result<Module, IrError> {
    Parser::new(text).parse_module()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let no_comment = match l.find(';') {
                    Some(idx) => &l[..idx],
                    None => l,
                };
                (i + 1, no_comment.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.peek();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    fn parse_module(&mut self) -> Result<Module, IrError> {
        let mut module = Module::new();
        while let Some((line_no, line)) = self.peek() {
            if let Some(rest) = line.strip_prefix("global ") {
                self.pos += 1;
                let (name, data, mutable) = parse_global(line_no, rest)?;
                module.add_global(name, data, mutable);
            } else if line.starts_with("func ") {
                let function = self.parse_function()?;
                module.add_function(function);
            } else {
                return Err(IrError::parse(
                    line_no,
                    format!("expected 'global' or 'func', found '{line}'"),
                ));
            }
        }
        Ok(module)
    }

    fn parse_function(&mut self) -> Result<Function, IrError> {
        let (line_no, header) = self.next().expect("caller checked");
        let rest = header
            .strip_prefix("func @")
            .ok_or_else(|| IrError::parse(line_no, "malformed function header"))?;
        let open_paren = rest
            .find('(')
            .ok_or_else(|| IrError::parse(line_no, "missing '(' in function header"))?;
        let close_paren = rest
            .find(')')
            .ok_or_else(|| IrError::parse(line_no, "missing ')' in function header"))?;
        let name = &rest[..open_paren];
        let params_str = &rest[open_paren + 1..close_paren];
        let tail = rest[close_paren + 1..].trim();
        let protect = tail.starts_with("protect_branches");
        if !tail.ends_with('{') {
            return Err(IrError::parse(line_no, "function header must end with '{'"));
        }
        let param_count = if params_str.trim().is_empty() {
            0
        } else {
            params_str.split(',').count()
        };
        let mut function = Function::new(name, param_count);
        function.attrs.protect_branches = protect;

        let mut current_block: Option<BlockId> = None;
        let mut max_value = param_count as u32;
        let mut block_names: HashMap<BlockId, String> = HashMap::new();

        loop {
            let Some((line_no, line)) = self.next() else {
                return Err(IrError::parse(0, "unexpected end of input inside function"));
            };
            if line == "}" {
                break;
            }
            if let Some(rest) = line.strip_prefix("local ") {
                let (size, lname) = parse_local(line_no, rest)?;
                function.add_local(lname, size);
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                let id = parse_block_label(line_no, label)?;
                while function.blocks.len() <= id.0 as usize {
                    function.add_block(format!("bb{}", function.blocks.len()));
                }
                block_names.insert(id, label.to_string());
                current_block = Some(id);
                continue;
            }
            let Some(block) = current_block else {
                return Err(IrError::parse(
                    line_no,
                    "instruction outside of a block label",
                ));
            };
            while function.blocks.len() <= block.0 as usize {
                function.add_block(format!("bb{}", function.blocks.len()));
            }
            if let Some(term) = try_parse_terminator(line_no, line)? {
                ensure_blocks(&mut function, &term);
                function.block_mut(block).terminator = Some(term);
            } else {
                let inst = parse_inst(line_no, line, &mut max_value)?;
                function.block_mut(block).insts.push(inst);
            }
        }
        for (id, name) in block_names {
            if (id.0 as usize) < function.blocks.len() {
                function.block_mut(id).name = name;
            }
        }
        function.reserve_values(max_value);
        Ok(function)
    }
}

fn ensure_blocks(function: &mut Function, term: &Terminator) {
    let max_target = term.successors().iter().map(|b| b.0).max().unwrap_or(0);
    while function.blocks.len() <= max_target as usize {
        function.add_block(format!("bb{}", function.blocks.len()));
    }
}

fn parse_global(line_no: usize, rest: &str) -> Result<(String, Vec<u8>, bool), IrError> {
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .and_then(|n| n.strip_prefix('@'))
        .ok_or_else(|| IrError::parse(line_no, "global name must start with '@'"))?;
    let kind = parts
        .next()
        .ok_or_else(|| IrError::parse(line_no, "missing global kind"))?;
    let mutable = match kind {
        "mutable" => true,
        "const" => false,
        other => {
            return Err(IrError::parse(
                line_no,
                format!("global kind must be 'mutable' or 'const', found '{other}'"),
            ))
        }
    };
    let data_str = parts
        .next()
        .ok_or_else(|| IrError::parse(line_no, "missing global data"))?;
    let data = if data_str == "-" {
        Vec::new()
    } else {
        if data_str.len() % 2 != 0 {
            return Err(IrError::parse(line_no, "global data must be whole bytes"));
        }
        (0..data_str.len())
            .step_by(2)
            .map(|i| {
                u8::from_str_radix(&data_str[i..i + 2], 16)
                    .map_err(|_| IrError::parse(line_no, "invalid hex byte in global data"))
            })
            .collect::<Result<Vec<u8>, IrError>>()?
    };
    Ok((name.to_string(), data, mutable))
}

fn parse_local(line_no: usize, rest: &str) -> Result<(u32, String), IrError> {
    // $l<N> <size> "<name>"
    let mut parts = rest.split_whitespace();
    let _slot = parts.next();
    let size = parts
        .next()
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| IrError::parse(line_no, "missing local size"))?;
    let name = rest
        .find('"')
        .and_then(|start| {
            let tail = &rest[start + 1..];
            tail.find('"').map(|end| tail[..end].to_string())
        })
        .unwrap_or_else(|| "local".to_string());
    Ok((size, name))
}

fn parse_block_label(line_no: usize, label: &str) -> Result<BlockId, IrError> {
    label
        .strip_prefix("bb")
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| IrError::parse(line_no, format!("invalid block label '{label}'")))
}

fn parse_value(line_no: usize, token: &str) -> Result<ValueId, IrError> {
    token
        .strip_prefix('%')
        .and_then(|n| n.parse::<u32>().ok())
        .map(ValueId)
        .ok_or_else(|| IrError::parse(line_no, format!("invalid value '{token}'")))
}

fn parse_operand(line_no: usize, token: &str) -> Result<Operand, IrError> {
    let token = token.trim().trim_end_matches(',');
    if token.starts_with('%') {
        return Ok(Operand::Value(parse_value(line_no, token)?));
    }
    let value = if let Some(hex) = token.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        token.parse::<u32>().ok()
    };
    value
        .map(Operand::Const)
        .ok_or_else(|| IrError::parse(line_no, format!("invalid operand '{token}'")))
}

fn split_args(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

fn try_parse_terminator(line_no: usize, line: &str) -> Result<Option<Terminator>, IrError> {
    if let Some(rest) = line.strip_prefix("jmp ") {
        return Ok(Some(Terminator::Jump(parse_block_label(
            line_no,
            rest.trim(),
        )?)));
    }
    if line == "ret" {
        return Ok(Some(Terminator::Ret(None)));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        return Ok(Some(Terminator::Ret(Some(parse_operand(
            line_no,
            rest.trim(),
        )?))));
    }
    if let Some(rest) = line.strip_prefix("br ") {
        // br <cond>, bbT, bbF [, protect(<cond>, t, f)]
        let (core, protect) = match rest.find("protect(") {
            Some(idx) => {
                let inner = &rest[idx + "protect(".len()..];
                let close = inner
                    .find(')')
                    .ok_or_else(|| IrError::parse(line_no, "missing ')' in protect clause"))?;
                (
                    rest[..idx].trim_end_matches([',', ' ']),
                    Some(&inner[..close]),
                )
            }
            None => (rest.trim(), None),
        };
        let parts = split_args(core);
        if parts.len() != 3 {
            return Err(IrError::parse(line_no, "br expects 'cond, bbT, bbF'"));
        }
        let cond = parse_operand(line_no, parts[0])?;
        let if_true = parse_block_label(line_no, parts[1])?;
        let if_false = parse_block_label(line_no, parts[2])?;
        let protection = match protect {
            None => None,
            Some(p) => {
                let parts = split_args(p);
                if parts.len() != 3 {
                    return Err(IrError::parse(
                        line_no,
                        "protect clause expects 'cond, true_symbol, false_symbol'",
                    ));
                }
                Some(BranchProtection {
                    condition: parse_operand(line_no, parts[0])?,
                    true_symbol: parse_operand(line_no, parts[1])?
                        .as_const()
                        .ok_or_else(|| IrError::parse(line_no, "true symbol must be a constant"))?,
                    false_symbol: parse_operand(line_no, parts[2])?.as_const().ok_or_else(
                        || IrError::parse(line_no, "false symbol must be a constant"),
                    )?,
                })
            }
        };
        return Ok(Some(Terminator::Branch {
            cond,
            if_true,
            if_false,
            protection,
        }));
    }
    if let Some(rest) = line.strip_prefix("switch ") {
        // switch <value>, bbDefault, [v1: bb1, v2: bb2]
        let bracket = rest
            .find('[')
            .ok_or_else(|| IrError::parse(line_no, "switch expects a '[...]' case list"))?;
        let close = rest
            .rfind(']')
            .ok_or_else(|| IrError::parse(line_no, "missing ']' in switch"))?;
        let head = split_args(rest[..bracket].trim_end_matches([',', ' ']));
        if head.len() != 2 {
            return Err(IrError::parse(line_no, "switch expects 'value, default'"));
        }
        let value = parse_operand(line_no, head[0])?;
        let default = parse_block_label(line_no, head[1])?;
        let mut cases = Vec::new();
        for case in split_args(&rest[bracket + 1..close]) {
            let (v, b) = case
                .split_once(':')
                .ok_or_else(|| IrError::parse(line_no, "switch case must be 'value: block'"))?;
            let v = parse_operand(line_no, v.trim())?
                .as_const()
                .ok_or_else(|| IrError::parse(line_no, "switch case value must be a constant"))?;
            cases.push((v, parse_block_label(line_no, b.trim())?));
        }
        return Ok(Some(Terminator::Switch {
            value,
            default,
            cases,
        }));
    }
    Ok(None)
}

fn parse_inst(line_no: usize, line: &str, max_value: &mut u32) -> Result<Inst, IrError> {
    // Either "%N = <op...>" or a void op ("store.*").
    let (result, body) = match line.split_once('=') {
        Some((lhs, rhs)) if lhs.trim().starts_with('%') => {
            let v = parse_value(line_no, lhs.trim())?;
            *max_value = (*max_value).max(v.0 + 1);
            (Some(v), rhs.trim())
        }
        _ => (None, line),
    };
    let (mnemonic, rest) = body.split_once(' ').unwrap_or((body, ""));
    let rest = rest.trim();
    let op = match mnemonic {
        "cmp" => {
            let (pred, args) = rest
                .split_once(' ')
                .ok_or_else(|| IrError::parse(line_no, "cmp expects a predicate"))?;
            let pred = Predicate::from_mnemonic(pred)
                .ok_or_else(|| IrError::parse(line_no, format!("unknown predicate '{pred}'")))?;
            let parts = split_args(args);
            if parts.len() != 2 {
                return Err(IrError::parse(line_no, "cmp expects two operands"));
            }
            Op::Cmp {
                pred,
                lhs: parse_operand(line_no, parts[0])?,
                rhs: parse_operand(line_no, parts[1])?,
            }
        }
        "enccmp" => {
            let (pred, args) = rest
                .split_once(' ')
                .ok_or_else(|| IrError::parse(line_no, "enccmp expects a predicate"))?;
            let pred = Predicate::from_mnemonic(pred)
                .ok_or_else(|| IrError::parse(line_no, format!("unknown predicate '{pred}'")))?;
            let parts = split_args(args);
            if parts.len() != 4 {
                return Err(IrError::parse(line_no, "enccmp expects 'lhs, rhs, A, C'"));
            }
            Op::EncodedCompare {
                pred,
                lhs: parse_operand(line_no, parts[0])?,
                rhs: parse_operand(line_no, parts[1])?,
                a: parse_operand(line_no, parts[2])?
                    .as_const()
                    .ok_or_else(|| IrError::parse(line_no, "A must be a constant"))?,
                c: parse_operand(line_no, parts[3])?
                    .as_const()
                    .ok_or_else(|| IrError::parse(line_no, "C must be a constant"))?,
            }
        }
        "select" => {
            let parts = split_args(rest);
            if parts.len() != 3 {
                return Err(IrError::parse(line_no, "select expects three operands"));
            }
            Op::Select {
                cond: parse_operand(line_no, parts[0])?,
                if_true: parse_operand(line_no, parts[1])?,
                if_false: parse_operand(line_no, parts[2])?,
            }
        }
        "load.w" | "load.b" => Op::Load {
            addr: parse_operand(line_no, rest)?,
            width: if mnemonic.ends_with('b') {
                MemWidth::Byte
            } else {
                MemWidth::Word
            },
        },
        "store.w" | "store.b" => {
            let parts = split_args(rest);
            if parts.len() != 2 {
                return Err(IrError::parse(line_no, "store expects 'addr, value'"));
            }
            Op::Store {
                addr: parse_operand(line_no, parts[0])?,
                value: parse_operand(line_no, parts[1])?,
                width: if mnemonic.ends_with('b') {
                    MemWidth::Byte
                } else {
                    MemWidth::Word
                },
            }
        }
        "localaddr" => Op::LocalAddr {
            local: rest
                .strip_prefix("$l")
                .and_then(|n| n.parse::<u32>().ok())
                .map(LocalId)
                .ok_or_else(|| IrError::parse(line_no, format!("invalid local '{rest}'")))?,
        },
        "globaladdr" => Op::GlobalAddr {
            name: rest
                .strip_prefix('@')
                .ok_or_else(|| IrError::parse(line_no, "global name must start with '@'"))?
                .to_string(),
        },
        "call" => {
            let open = rest
                .find('(')
                .ok_or_else(|| IrError::parse(line_no, "call expects '(args)'"))?;
            let close = rest
                .rfind(')')
                .ok_or_else(|| IrError::parse(line_no, "missing ')' in call"))?;
            let callee = rest[..open]
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| IrError::parse(line_no, "callee must start with '@'"))?;
            let args = split_args(&rest[open + 1..close])
                .into_iter()
                .map(|a| parse_operand(line_no, a))
                .collect::<Result<Vec<Operand>, IrError>>()?;
            Op::Call {
                callee: callee.to_string(),
                args,
            }
        }
        other => {
            let op = BinOp::from_mnemonic(other).ok_or_else(|| {
                IrError::parse(line_no, format!("unknown instruction mnemonic '{other}'"))
            })?;
            let parts = split_args(rest);
            if parts.len() != 2 {
                return Err(IrError::parse(line_no, "binary op expects two operands"));
            }
            Op::Bin {
                op,
                lhs: parse_operand(line_no, parts[0])?,
                rhs: parse_operand(line_no, parts[1])?,
            }
        }
    };
    if op.has_result() != result.is_some() {
        return Err(IrError::parse(
            line_no,
            "result assignment does not match the instruction kind",
        ));
    }
    Ok(Inst { result, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
global @key const deadbeef
global @scratch mutable -

func @callee(%0) {
bb0:
  ret %0
}

func @main(%0, %1) protect_branches {
  local $l0 4 "i"
bb0:
  %2 = add %0, %1
  %3 = cmp ult %2, 0x10
  %4 = localaddr $l0
  store.w %4, %2
  %5 = load.w %4
  %6 = globaladdr @key
  %7 = load.b %6
  %8 = select %3, %5, %7
  %9 = call @callee(%8)
  %10 = enccmp eq %9, %2, 63877, 14991
  %11 = cmp eq %10, 29982
  br %11, bb1, bb2, protect(%10, 29982, 35552)
bb1:
  jmp bb3
bb2:
  switch %2, bb3, [1: bb1, 2: bb3]
bb3:
  ret %2
}
"#;

    #[test]
    fn parses_the_sample_module() {
        let m = parse_module(SAMPLE).expect("parses");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(
            m.global("key").expect("present").data,
            vec![0xDE, 0xAD, 0xBE, 0xEF]
        );
        assert!(m.global("scratch").expect("present").data.is_empty());
        let main = m.function("main").expect("present");
        assert!(main.attrs.protect_branches);
        assert_eq!(main.params.len(), 2);
        assert_eq!(main.locals.len(), 1);
        assert_eq!(main.blocks.len(), 4);
        crate::verify::verify_module(&m).expect("verifies");
    }

    #[test]
    fn parsed_module_round_trips_through_the_printer() {
        let m1 = parse_module(SAMPLE).expect("parses");
        let printed = print_module(&m1);
        let m2 = parse_module(&printed).expect("re-parses");
        assert_eq!(m1.globals, m2.globals);
        assert_eq!(m1.functions.len(), m2.functions.len());
        for (f1, f2) in m1.functions.iter().zip(&m2.functions) {
            assert_eq!(f1.name, f2.name);
            assert_eq!(f1.params, f2.params);
            assert_eq!(f1.attrs, f2.attrs);
            for (b1, b2) in f1.blocks.iter().zip(&f2.blocks) {
                assert_eq!(b1.insts, b2.insts);
                assert_eq!(b1.terminator, b2.terminator);
            }
        }
    }

    #[test]
    fn parsed_module_executes() {
        let m = parse_module(SAMPLE).expect("parses");
        let r = crate::interp::run(&m, "main", &[3, 4]).expect("runs");
        assert_eq!(r.return_value, Some(7));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_module("bogus line").is_err());
        assert!(parse_module("global @g maybe aa").is_err());
        assert!(parse_module("func @f() {\nbb0:\n  %1 = frobnicate 1, 2\n}").is_err());
        assert!(
            parse_module("func @f() {\n  %1 = add 1, 2\n}").is_err(),
            "inst before label"
        );
        assert!(parse_module("func @f() {\nbb0:\n  br 1, bb1\n}").is_err());
        assert!(parse_module("func @f() {\nbb0:\n  store.w 4\n}").is_err());
        assert!(parse_module("func @f() {\nbb0:\n  %1 = cmp zz 1, 2\n}").is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let text = "global @g const aa\nfunc @f() {\nbb0:\n  %1 = cmp zz 1, 2\n}";
        let err = parse_module(text).expect_err("must fail");
        match err {
            IrError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
