//! Reference interpreter for the IR.
//!
//! The interpreter defines the ground-truth semantics of the IR. It is used
//! to validate the middle-end passes (a transformed module must behave like
//! the original) and the ARMv7-M back end (the simulator must compute the
//! same results as the interpreter).
//!
//! Memory model: a flat little-endian byte array. Globals are laid out from
//! [`GLOBAL_BASE`] upwards; the call stack grows downwards from the end of
//! memory and hosts the function-local stack slots.

use std::collections::HashMap;

use crate::error::IrError;
use crate::function::{Function, Module};
use crate::inst::{MemWidth, Op, Operand, Predicate, Terminator, ValueId};

/// Base address where globals are placed.
pub const GLOBAL_BASE: u32 = 0x1000;

/// Configuration of an interpreter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpOptions {
    /// Size of guest memory in bytes.
    pub memory_size: u32,
    /// Maximum number of executed instructions before aborting.
    pub max_steps: u64,
    /// Maximum call depth before aborting.
    pub max_call_depth: u32,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            memory_size: 1 << 20,
            max_steps: 200_000_000,
            max_call_depth: 128,
        }
    }
}

/// Result of executing a function to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The value returned by the function (if it returned one).
    pub return_value: Option<u32>,
    /// Number of IR instructions executed (terminators included).
    pub steps: u64,
}

/// An interpreter instance holding guest memory across calls.
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    memory: Vec<u8>,
    global_addrs: HashMap<String, u32>,
    stack_top: u32,
    steps: u64,
    options: InterpOptions,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter, laying out the module's globals in memory.
    #[must_use]
    pub fn new(module: &'m Module, options: InterpOptions) -> Self {
        let mut memory = vec![0u8; options.memory_size as usize];
        let mut global_addrs = HashMap::new();
        let mut cursor = GLOBAL_BASE;
        for global in &module.globals {
            let addr = cursor;
            let end = (addr as usize + global.data.len()).min(memory.len());
            memory[addr as usize..end].copy_from_slice(&global.data[..end - addr as usize]);
            global_addrs.insert(global.name.clone(), addr);
            // Word-align the next global.
            cursor = addr + ((global.data.len() as u32 + 3) & !3).max(4);
        }
        let stack_top = options.memory_size;
        Interpreter {
            module,
            memory,
            global_addrs,
            stack_top,
            steps: 0,
            options,
        }
    }

    /// The address a global was placed at.
    #[must_use]
    pub fn global_address(&self, name: &str) -> Option<u32> {
        self.global_addrs.get(name).copied()
    }

    /// Reads `len` bytes of guest memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read_memory(&self, addr: u32, len: u32) -> &[u8] {
        &self.memory[addr as usize..(addr + len) as usize]
    }

    /// Writes bytes into guest memory (e.g. to set up workload inputs).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_memory(&mut self, addr: u32, data: &[u8]) {
        self.memory[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Number of IR instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Calls a function by name with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Interpretation`] for missing functions, bad memory
    /// accesses, step/recursion limits and malformed code.
    pub fn call(&mut self, name: &str, args: &[u32]) -> Result<RunResult, IrError> {
        let start = self.steps;
        let ret = self.call_function(name, args, 0)?;
        Ok(RunResult {
            return_value: ret,
            steps: self.steps - start,
        })
    }

    fn call_function(
        &mut self,
        name: &str,
        args: &[u32],
        depth: u32,
    ) -> Result<Option<u32>, IrError> {
        if depth > self.options.max_call_depth {
            return Err(IrError::interp(format!(
                "call depth limit exceeded while calling '{name}'"
            )));
        }
        let function = self
            .module
            .function(name)
            .ok_or_else(|| IrError::interp(format!("function '{name}' not found")))?;
        if args.len() != function.params.len() {
            return Err(IrError::interp(format!(
                "function '{name}' expects {} arguments, got {}",
                function.params.len(),
                args.len()
            )));
        }

        // Allocate this frame's locals on the downward-growing stack.
        let frame_size: u32 = function
            .locals
            .iter()
            .map(|l| (l.size_bytes + 3) & !3)
            .sum();
        if frame_size > self.stack_top || self.stack_top - frame_size < GLOBAL_BASE {
            return Err(IrError::interp("stack overflow".to_string()));
        }
        let saved_stack_top = self.stack_top;
        self.stack_top -= frame_size;
        let frame_base = self.stack_top;
        let mut local_addrs = Vec::with_capacity(function.locals.len());
        let mut cursor = frame_base;
        for local in &function.locals {
            local_addrs.push(cursor);
            cursor += (local.size_bytes + 3) & !3;
        }

        let mut values: HashMap<ValueId, u32> = HashMap::new();
        for (param, arg) in function.params.iter().zip(args) {
            values.insert(*param, *arg);
        }

        let result = self.exec_blocks(function, &mut values, &local_addrs, depth);
        self.stack_top = saved_stack_top;
        result
    }

    fn exec_blocks(
        &mut self,
        function: &Function,
        values: &mut HashMap<ValueId, u32>,
        local_addrs: &[u32],
        depth: u32,
    ) -> Result<Option<u32>, IrError> {
        let mut block = function.entry();
        loop {
            let b = function.block(block);
            for inst in &b.insts {
                self.bump_steps(function)?;
                let value = self.exec_op(function, &inst.op, values, local_addrs, depth)?;
                if let Some(result) = inst.result {
                    values.insert(result, value.unwrap_or(0));
                }
            }
            self.bump_steps(function)?;
            let Some(term) = &b.terminator else {
                return Err(IrError::interp(format!(
                    "block '{}' of '{}' has no terminator",
                    b.name, function.name
                )));
            };
            match term {
                Terminator::Jump(t) => block = *t,
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                    ..
                } => {
                    let c = self.operand(cond, values, &function.name)?;
                    block = if c != 0 { *if_true } else { *if_false };
                }
                Terminator::Switch {
                    value,
                    default,
                    cases,
                } => {
                    let v = self.operand(value, values, &function.name)?;
                    block = cases
                        .iter()
                        .find(|(case, _)| *case == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                }
                Terminator::Ret(v) => {
                    return match v {
                        Some(op) => Ok(Some(self.operand(op, values, &function.name)?)),
                        None => Ok(None),
                    };
                }
            }
            if block.0 as usize >= function.blocks.len() {
                return Err(IrError::interp(format!(
                    "jump to non-existent block {block} in '{}'",
                    function.name
                )));
            }
        }
    }

    fn bump_steps(&mut self, function: &Function) -> Result<(), IrError> {
        self.steps += 1;
        if self.steps > self.options.max_steps {
            return Err(IrError::interp(format!(
                "step limit exceeded in '{}'",
                function.name
            )));
        }
        Ok(())
    }

    fn operand(
        &self,
        operand: &Operand,
        values: &HashMap<ValueId, u32>,
        function: &str,
    ) -> Result<u32, IrError> {
        match operand {
            Operand::Const(c) => Ok(*c),
            Operand::Value(v) => values.get(v).copied().ok_or_else(|| {
                IrError::interp(format!("use of undefined value {v} in '{function}'"))
            }),
        }
    }

    fn exec_op(
        &mut self,
        function: &Function,
        op: &Op,
        values: &HashMap<ValueId, u32>,
        local_addrs: &[u32],
        depth: u32,
    ) -> Result<Option<u32>, IrError> {
        let fname = &function.name;
        match op {
            Op::Bin { op, lhs, rhs } => {
                let l = self.operand(lhs, values, fname)?;
                let r = self.operand(rhs, values, fname)?;
                Ok(Some(op.evaluate(l, r)))
            }
            Op::Cmp { pred, lhs, rhs } => {
                let l = self.operand(lhs, values, fname)?;
                let r = self.operand(rhs, values, fname)?;
                Ok(Some(u32::from(pred.evaluate(l, r))))
            }
            Op::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.operand(cond, values, fname)?;
                let t = self.operand(if_true, values, fname)?;
                let f = self.operand(if_false, values, fname)?;
                Ok(Some(if c != 0 { t } else { f }))
            }
            Op::Load { addr, width } => {
                let a = self.operand(addr, values, fname)?;
                Ok(Some(self.load(a, *width, fname)?))
            }
            Op::Store { addr, value, width } => {
                let a = self.operand(addr, values, fname)?;
                let v = self.operand(value, values, fname)?;
                self.store(a, v, *width, fname)?;
                Ok(None)
            }
            Op::LocalAddr { local } => local_addrs
                .get(local.0 as usize)
                .copied()
                .map(Some)
                .ok_or_else(|| IrError::interp(format!("unknown local {local} in '{fname}'"))),
            Op::GlobalAddr { name } => self
                .global_address(name)
                .map(Some)
                .ok_or_else(|| IrError::interp(format!("unknown global '{name}' in '{fname}'"))),
            Op::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.operand(a, values, fname)?);
                }
                let r = self.call_function(callee, &argv, depth + 1)?;
                Ok(Some(r.unwrap_or(0)))
            }
            Op::EncodedCompare {
                pred,
                lhs,
                rhs,
                a,
                c,
            } => {
                let l = self.operand(lhs, values, fname)?;
                let r = self.operand(rhs, values, fname)?;
                Ok(Some(encoded_compare_value(*pred, l, r, *a, *c)))
            }
        }
    }

    fn load(&self, addr: u32, width: MemWidth, function: &str) -> Result<u32, IrError> {
        let size = width.bytes();
        let end = addr as usize + size as usize;
        if end > self.memory.len() {
            return Err(IrError::interp(format!(
                "out-of-bounds load of {size} bytes at {addr:#x} in '{function}'"
            )));
        }
        Ok(match width {
            MemWidth::Byte => u32::from(self.memory[addr as usize]),
            MemWidth::Word => u32::from_le_bytes(
                self.memory[addr as usize..end]
                    .try_into()
                    .expect("slice length checked"),
            ),
        })
    }

    fn store(
        &mut self,
        addr: u32,
        value: u32,
        width: MemWidth,
        function: &str,
    ) -> Result<(), IrError> {
        let size = width.bytes();
        let end = addr as usize + size as usize;
        if end > self.memory.len() {
            return Err(IrError::interp(format!(
                "out-of-bounds store of {size} bytes at {addr:#x} in '{function}'"
            )));
        }
        match width {
            MemWidth::Byte => self.memory[addr as usize] = value as u8,
            MemWidth::Word => {
                self.memory[addr as usize..end].copy_from_slice(&value.to_le_bytes());
            }
        }
        Ok(())
    }
}

/// The arithmetic of the paper's encoded comparison, as executed by the
/// interpreter (identical to the kernels in `secbranch-ancode`; duplicated
/// here so the IR crate stays dependency-free — the equivalence is checked by
/// an integration test).
#[must_use]
pub fn encoded_compare_value(pred: Predicate, lhs: u32, rhs: u32, a: u32, c: u32) -> u32 {
    let ordering = |l: u32, r: u32| l.wrapping_sub(r).wrapping_add(c) % a;
    match pred {
        Predicate::Eq | Predicate::Ne => ordering(lhs, rhs).wrapping_add(ordering(rhs, lhs)),
        Predicate::Ult | Predicate::Uge => ordering(lhs, rhs),
        Predicate::Ugt | Predicate::Ule => ordering(rhs, lhs),
    }
}

/// Convenience wrapper: builds a fresh interpreter with default options and
/// calls `name` once.
///
/// # Errors
///
/// Propagates any [`IrError`] from interpretation.
pub fn run(module: &Module, name: &str, args: &[u32]) -> Result<RunResult, IrError> {
    Interpreter::new(module, InterpOptions::default()).call(name, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn arithmetic_and_return() {
        let mut b = FunctionBuilder::new("f", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.bin(BinOp::Add, x, y);
        let d = b.bin(BinOp::Mul, s, 10u32);
        b.ret(Some(d));
        let mut m = Module::new();
        m.add_function(b.finish());
        let r = run(&m, "f", &[3, 4]).expect("runs");
        assert_eq!(r.return_value, Some(70));
        assert!(r.steps > 0);
    }

    #[test]
    fn branch_and_select() {
        let mut b = FunctionBuilder::new("abs_diff", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t = b.create_block("t");
        let e = b.create_block("e");
        let c = b.cmp(Predicate::Uge, x, y);
        b.branch(c, t, e);
        b.switch_to(t);
        let d = b.bin(BinOp::Sub, x, y);
        b.ret(Some(d));
        b.switch_to(e);
        let d = b.bin(BinOp::Sub, y, x);
        b.ret(Some(d));
        let mut m = Module::new();
        m.add_function(b.finish());
        assert_eq!(run(&m, "abs_diff", &[9, 3]).unwrap().return_value, Some(6));
        assert_eq!(run(&m, "abs_diff", &[3, 9]).unwrap().return_value, Some(6));
    }

    #[test]
    fn loop_sums_global_words() {
        let mut m = Module::new();
        let data: Vec<u8> = [1u32, 2, 3, 4, 5]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        m.add_global("data", data, false);

        let mut b = FunctionBuilder::new("sum", 1);
        let n = b.param(0);
        let i = b.local("i", 4);
        let acc = b.local("acc", 4);
        b.store_local(i, 0u32);
        b.store_local(acc, 0u32);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let iv = b.load_local(i);
        let c = b.cmp(Predicate::Ult, iv, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let iv = b.load_local(i);
        let base = b.global_addr("data");
        let off = b.bin(BinOp::Mul, iv, 4u32);
        let addr = b.bin(BinOp::Add, base, off);
        let w = b.load(addr);
        let a = b.load_local(acc);
        let a2 = b.bin(BinOp::Add, a, w);
        b.store_local(acc, a2);
        let i2 = b.bin(BinOp::Add, iv, 1u32);
        b.store_local(i, i2);
        b.jump(header);
        b.switch_to(exit);
        let a = b.load_local(acc);
        b.ret(Some(a));
        m.add_function(b.finish());

        crate::verify::verify_module(&m).expect("verifies");
        assert_eq!(run(&m, "sum", &[5]).unwrap().return_value, Some(15));
        assert_eq!(run(&m, "sum", &[3]).unwrap().return_value, Some(6));
        assert_eq!(run(&m, "sum", &[0]).unwrap().return_value, Some(0));
    }

    #[test]
    fn switch_dispatch() {
        let mut b = FunctionBuilder::new("classify", 1);
        let x = b.param(0);
        let one = b.create_block("one");
        let two = b.create_block("two");
        let other = b.create_block("other");
        b.switch(x, other, &[(1, one), (2, two)]);
        b.switch_to(one);
        b.ret(Some(Operand::Const(100)));
        b.switch_to(two);
        b.ret(Some(Operand::Const(200)));
        b.switch_to(other);
        b.ret(Some(Operand::Const(0)));
        let mut m = Module::new();
        m.add_function(b.finish());
        assert_eq!(run(&m, "classify", &[1]).unwrap().return_value, Some(100));
        assert_eq!(run(&m, "classify", &[2]).unwrap().return_value, Some(200));
        assert_eq!(run(&m, "classify", &[9]).unwrap().return_value, Some(0));
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let mut sq = FunctionBuilder::new("square", 1);
        let x = sq.param(0);
        let r = sq.bin(BinOp::Mul, x, x);
        sq.ret(Some(r));

        let mut f = FunctionBuilder::new("sum_of_squares", 2);
        let (a, b2) = (f.param(0), f.param(1));
        let sa = f.call("square", &[a]);
        let sb = f.call("square", &[b2]);
        let s = f.bin(BinOp::Add, sa, sb);
        f.ret(Some(s));

        let mut m = Module::new();
        m.add_function(sq.finish());
        m.add_function(f.finish());
        assert_eq!(
            run(&m, "sum_of_squares", &[3, 4]).unwrap().return_value,
            Some(25)
        );
    }

    #[test]
    fn byte_memory_accesses() {
        let mut m = Module::new();
        m.add_global("buf", vec![0; 4], true);
        let mut b = FunctionBuilder::new("f", 0);
        let addr = b.global_addr("buf");
        b.store_byte(addr, 0xAAu32);
        let one = b.bin(BinOp::Add, addr, 1u32);
        b.store_byte(one, 0xBBu32);
        let w = b.load(addr);
        b.ret(Some(w));
        m.add_function(b.finish());
        assert_eq!(run(&m, "f", &[]).unwrap().return_value, Some(0xBBAA));
    }

    #[test]
    fn encoded_compare_semantics_match_table_one() {
        // 41 < 1000 with the paper's parameters: symbol 2^32%A + C = 35552.
        let a = 63_877u32;
        let c = 29_982u32;
        assert_eq!(
            encoded_compare_value(Predicate::Ult, 41 * a, 1000 * a, a, c),
            35_552
        );
        assert_eq!(
            encoded_compare_value(Predicate::Ult, 1000 * a, 41 * a, a, c),
            29_982
        );
        let ce = 14_991u32;
        assert_eq!(
            encoded_compare_value(Predicate::Eq, 7 * a, 7 * a, a, ce),
            2 * ce
        );
        assert_eq!(
            encoded_compare_value(Predicate::Eq, 7 * a, 8 * a, a, ce),
            5_570 + 2 * ce
        );
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut b = FunctionBuilder::new("spin", 0);
        let looper = b.create_block("loop");
        b.jump(looper);
        b.switch_to(looper);
        b.jump(looper);
        let mut m = Module::new();
        m.add_function(b.finish());
        let mut interp = Interpreter::new(
            &m,
            InterpOptions {
                max_steps: 1000,
                ..InterpOptions::default()
            },
        );
        let e = interp.call("spin", &[]).expect_err("must hit the limit");
        assert!(e.to_string().contains("step limit"));
    }

    #[test]
    fn recursion_depth_is_limited() {
        let mut b = FunctionBuilder::new("rec", 0);
        let r = b.call("rec", &[]);
        b.ret(Some(r));
        let mut m = Module::new();
        m.add_function(b.finish());
        let e = run(&m, "rec", &[]).expect_err("must hit the limit");
        assert!(e.to_string().contains("call depth"));
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let mut b = FunctionBuilder::new("f", 0);
        let v = b.load(0xFFFF_FFFFu32);
        b.ret(Some(v));
        let mut m = Module::new();
        m.add_function(b.finish());
        let e = run(&m, "f", &[]).expect_err("must fail");
        assert!(e.to_string().contains("out-of-bounds"));
    }

    #[test]
    fn missing_function_and_bad_arity_are_errors() {
        let m = Module::new();
        assert!(run(&m, "nope", &[]).is_err());

        let mut b = FunctionBuilder::new("f", 2);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let e = run(&m, "f", &[1]).expect_err("must fail");
        assert!(e.to_string().contains("expects 2"));
    }

    #[test]
    fn interpreter_exposes_global_memory() {
        let mut m = Module::new();
        m.add_global("out", vec![0; 8], true);
        let mut b = FunctionBuilder::new("write", 1);
        let v = b.param(0);
        let addr = b.global_addr("out");
        b.store(addr, v);
        b.ret(None);
        m.add_function(b.finish());

        let mut interp = Interpreter::new(&m, InterpOptions::default());
        let addr = interp.global_address("out").expect("global exists");
        interp.call("write", &[0xDEAD_BEEF]).expect("runs");
        assert_eq!(
            interp.read_memory(addr, 4),
            0xDEAD_BEEFu32.to_le_bytes().as_slice()
        );
        interp.write_memory(addr, &[1, 2, 3, 4]);
        assert_eq!(interp.read_memory(addr, 4), &[1, 2, 3, 4]);
    }
}
