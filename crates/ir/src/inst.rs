//! Instruction set of the IR: identifiers, operands, operations and
//! terminators.

use std::fmt;

/// Identifier of an SSA-style virtual value (an instruction result or a
/// function parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of a function-local stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$l{}", self.0)
    }
}

/// An instruction operand: either a virtual value or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A previously defined value.
    Value(ValueId),
    /// A 32-bit immediate constant.
    Const(u32),
}

impl Operand {
    /// Returns the value id if this operand is a value.
    #[must_use]
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// Returns the constant if this operand is an immediate.
    #[must_use]
    pub fn as_const(self) -> Option<u32> {
        match self {
            Operand::Value(_) => None,
            Operand::Const(c) => Some(c),
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

impl From<u32> for Operand {
    fn from(c: u32) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary arithmetic and bitwise operations (all on 32-bit words, wrapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (division by zero yields zero, as on ARMv7-M).
    UDiv,
    /// Unsigned remainder (modulo zero yields the dividend).
    URem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amounts are taken modulo 32).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
}

impl BinOp {
    /// All binary operations.
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::URem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
    ];

    /// Evaluates the operation on two 32-bit values with the IR's reference
    /// semantics (wrapping arithmetic, ARMv7-M-style division by zero).
    #[must_use]
    pub fn evaluate(self, lhs: u32, rhs: u32) -> u32 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::UDiv => lhs.checked_div(rhs).unwrap_or(0),
            BinOp::URem => {
                if rhs == 0 {
                    lhs
                } else {
                    lhs % rhs
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs & 31),
            BinOp::LShr => lhs.wrapping_shr(rhs & 31),
            BinOp::AShr => (lhs as i32).wrapping_shr(rhs & 31) as u32,
        }
    }

    /// The textual mnemonic used by the printer and parser.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        BinOp::ALL.into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicates of the IR `cmp` instruction (unsigned, mirroring the
/// functional values of the AN-coded pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl Predicate {
    /// All predicates.
    pub const ALL: [Predicate; 6] = [
        Predicate::Eq,
        Predicate::Ne,
        Predicate::Ult,
        Predicate::Ule,
        Predicate::Ugt,
        Predicate::Uge,
    ];

    /// Evaluates the predicate on two unsigned 32-bit values.
    #[must_use]
    pub fn evaluate(self, lhs: u32, rhs: u32) -> bool {
        match self {
            Predicate::Eq => lhs == rhs,
            Predicate::Ne => lhs != rhs,
            Predicate::Ult => lhs < rhs,
            Predicate::Ule => lhs <= rhs,
            Predicate::Ugt => lhs > rhs,
            Predicate::Uge => lhs >= rhs,
        }
    }

    /// The logically negated predicate.
    #[must_use]
    pub fn negated(self) -> Predicate {
        match self {
            Predicate::Eq => Predicate::Ne,
            Predicate::Ne => Predicate::Eq,
            Predicate::Ult => Predicate::Uge,
            Predicate::Ule => Predicate::Ugt,
            Predicate::Ugt => Predicate::Ule,
            Predicate::Uge => Predicate::Ult,
        }
    }

    /// The textual mnemonic used by the printer and parser.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Predicate::Eq => "eq",
            Predicate::Ne => "ne",
            Predicate::Ult => "ult",
            Predicate::Ule => "ule",
            Predicate::Ugt => "ugt",
            Predicate::Uge => "uge",
        }
    }

    /// Parses a mnemonic produced by [`Predicate::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Predicate> {
        Predicate::ALL.into_iter().find(|p| p.mnemonic() == s)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit access (`load.b` / `store.b`).
    Byte,
    /// 32-bit access (`load.w` / `store.w`).
    Word,
}

impl MemWidth {
    /// The access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Word => 4,
        }
    }
}

/// The operation performed by an [`Inst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Binary arithmetic / bitwise operation.
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Plain comparison producing 0 or 1.
    Cmp {
        /// The predicate.
        pred: Predicate,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Conditional select: `cond != 0 ? if_true : if_false`.
    Select {
        /// The selector (0 = false, anything else = true).
        cond: Operand,
        /// Value when the selector is true.
        if_true: Operand,
        /// Value when the selector is false.
        if_false: Operand,
    },
    /// Memory load from an address.
    Load {
        /// Byte address to load from.
        addr: Operand,
        /// Access width.
        width: MemWidth,
    },
    /// Memory store to an address.
    Store {
        /// Byte address to store to.
        addr: Operand,
        /// Value to store (truncated for byte stores).
        value: Operand,
        /// Access width.
        width: MemWidth,
    },
    /// Address of a function-local stack slot.
    LocalAddr {
        /// The stack slot.
        local: LocalId,
    },
    /// Address of a module global.
    GlobalAddr {
        /// Name of the global.
        name: String,
    },
    /// Call to another function in the module (by name). Arguments are
    /// passed by value; the result is the callee's return value (0 if the
    /// callee returns nothing).
    Call {
        /// Callee name.
        callee: String,
        /// Argument list.
        args: Vec<Operand>,
    },
    /// The paper's redundantly encoded comparison (Section IV), inserted by
    /// the AN Coder pass. Operands are AN-coded; the result is the raw
    /// condition value (one of the two symbols of Table I when fault-free).
    ///
    /// The encoding parameters are embedded so the instruction is
    /// self-contained for the interpreter and the back end.
    EncodedCompare {
        /// The comparison predicate.
        pred: Predicate,
        /// Left AN-coded operand.
        lhs: Operand,
        /// Right AN-coded operand.
        rhs: Operand,
        /// The AN-code constant `A`.
        a: u32,
        /// The condition constant `C` for this predicate class.
        c: u32,
    },
}

impl Op {
    /// Whether this operation produces a result value.
    #[must_use]
    pub fn has_result(&self) -> bool {
        !matches!(self, Op::Store { .. })
    }

    /// The operands read by this operation, in a fixed order.
    #[must_use]
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::EncodedCompare { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::Select {
                cond,
                if_true,
                if_false,
            } => vec![*cond, *if_true, *if_false],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, value, .. } => vec![*addr, *value],
            Op::LocalAddr { .. } | Op::GlobalAddr { .. } => vec![],
            Op::Call { args, .. } => args.clone(),
        }
    }

    /// Rewrites every operand of the operation through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::EncodedCompare { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::Select {
                cond,
                if_true,
                if_false,
            } => {
                *cond = f(*cond);
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            Op::Load { addr, .. } => *addr = f(*addr),
            Op::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            Op::LocalAddr { .. } | Op::GlobalAddr { .. } => {}
            Op::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }
}

/// A single IR instruction: an operation plus its (optional) result value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// The value defined by this instruction, if any.
    pub result: Option<ValueId>,
    /// The operation performed.
    pub op: Op,
}

/// Metadata attached to a protected conditional branch by the AN Coder pass:
/// the redundant condition value and the two symbols it is checked against.
/// The back end's CFI instrumentation uses this to merge the condition value
/// into the CFI state of the successor blocks (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchProtection {
    /// The encoded condition value (result of an `EncodedCompare`).
    pub condition: Operand,
    /// Symbol expected on the taken (`if_true`) edge.
    pub true_symbol: u32,
    /// Symbol expected on the fall-through (`if_false`) edge.
    pub false_symbol: u32,
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a boolean (0/1) condition.
    Branch {
        /// The branch condition (0 = fall through to `if_false`).
        cond: Operand,
        /// Target when the condition is non-zero.
        if_true: BlockId,
        /// Target when the condition is zero.
        if_false: BlockId,
        /// Present when the branch is protected by the paper's scheme.
        protection: Option<BranchProtection>,
    },
    /// Multi-way switch on a 32-bit value.
    Switch {
        /// The scrutinee.
        value: Operand,
        /// Target when no case matches.
        default: BlockId,
        /// `(case value, target)` pairs.
        cases: Vec<(u32, BlockId)>,
    },
    /// Return from the function.
    Ret(Option<Operand>),
}

impl Terminator {
    /// The successor blocks of this terminator, in edge order.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Switch { default, cases, .. } => {
                let mut s = vec![*default];
                s.extend(cases.iter().map(|(_, b)| *b));
                s
            }
            Terminator::Ret(_) => vec![],
        }
    }

    /// The operands read by the terminator.
    #[must_use]
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Terminator::Jump(_) => vec![],
            Terminator::Branch {
                cond, protection, ..
            } => {
                let mut ops = vec![*cond];
                if let Some(p) = protection {
                    ops.push(p.condition);
                }
                ops
            }
            Terminator::Switch { value, .. } => vec![*value],
            Terminator::Ret(v) => v.iter().copied().collect(),
        }
    }

    /// Rewrites every block target through `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(t) => *t = f(*t),
            Terminator::Branch {
                if_true, if_false, ..
            } => {
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            Terminator::Switch { default, cases, .. } => {
                *default = f(*default);
                for (_, b) in cases {
                    *b = f(*b);
                }
            }
            Terminator::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_reference_semantics() {
        assert_eq!(BinOp::Add.evaluate(u32::MAX, 1), 0);
        assert_eq!(BinOp::Sub.evaluate(0, 1), u32::MAX);
        assert_eq!(BinOp::Mul.evaluate(3, 7), 21);
        assert_eq!(BinOp::UDiv.evaluate(7, 2), 3);
        assert_eq!(BinOp::UDiv.evaluate(7, 0), 0, "ARMv7-M division by zero");
        assert_eq!(BinOp::URem.evaluate(7, 3), 1);
        assert_eq!(BinOp::URem.evaluate(7, 0), 7);
        assert_eq!(BinOp::And.evaluate(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.evaluate(0b1100, 0b1010), 0b1110);
        assert_eq!(BinOp::Xor.evaluate(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::Shl.evaluate(1, 4), 16);
        assert_eq!(BinOp::LShr.evaluate(0x8000_0000, 31), 1);
        assert_eq!(BinOp::AShr.evaluate(0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn binop_mnemonics_roundtrip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn predicate_mnemonics_roundtrip_and_negation() {
        for p in Predicate::ALL {
            assert_eq!(Predicate::from_mnemonic(p.mnemonic()), Some(p));
            assert_eq!(p.negated().negated(), p);
            for (x, y) in [(1u32, 2u32), (5, 5), (9, 3)] {
                assert_eq!(p.evaluate(x, y), !p.negated().evaluate(x, y));
            }
        }
    }

    #[test]
    fn operand_conversions() {
        let v: Operand = ValueId(3).into();
        assert_eq!(v.as_value(), Some(ValueId(3)));
        assert_eq!(v.as_const(), None);
        let c: Operand = 7u32.into();
        assert_eq!(c.as_const(), Some(7));
        assert_eq!(c.as_value(), None);
        assert_eq!(format!("{v} {c}"), "%3 7");
    }

    #[test]
    fn op_operand_traversal_and_rewrite() {
        let mut op = Op::Select {
            cond: Operand::Value(ValueId(0)),
            if_true: Operand::Const(1),
            if_false: Operand::Value(ValueId(2)),
        };
        assert_eq!(op.operands().len(), 3);
        op.map_operands(|o| match o {
            Operand::Value(v) => Operand::Value(ValueId(v.0 + 10)),
            c => c,
        });
        assert_eq!(
            op.operands(),
            vec![
                Operand::Value(ValueId(10)),
                Operand::Const(1),
                Operand::Value(ValueId(12))
            ]
        );
    }

    #[test]
    fn store_has_no_result() {
        let store = Op::Store {
            addr: Operand::Const(0),
            value: Operand::Const(0),
            width: MemWidth::Word,
        };
        assert!(!store.has_result());
        let load = Op::Load {
            addr: Operand::Const(0),
            width: MemWidth::Byte,
        };
        assert!(load.has_result());
    }

    #[test]
    fn terminator_successors_and_targets() {
        let mut t = Terminator::Switch {
            value: Operand::Const(3),
            default: BlockId(0),
            cases: vec![(1, BlockId(1)), (2, BlockId(2))],
        };
        assert_eq!(t.successors(), vec![BlockId(0), BlockId(1), BlockId(2)]);
        t.map_targets(|b| BlockId(b.0 + 5));
        assert_eq!(t.successors(), vec![BlockId(5), BlockId(6), BlockId(7)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn protected_branch_reports_condition_operand() {
        let t = Terminator::Branch {
            cond: Operand::Value(ValueId(1)),
            if_true: BlockId(1),
            if_false: BlockId(2),
            protection: Some(BranchProtection {
                condition: Operand::Value(ValueId(0)),
                true_symbol: 35_552,
                false_symbol: 29_982,
            }),
        };
        assert_eq!(t.operands().len(), 2);
    }

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }
}
