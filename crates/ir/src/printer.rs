//! Textual printer for IR modules.
//!
//! The format is line-based and intentionally simple; it round-trips through
//! the [`crate::parser`]. Blocks are labelled `bb<N>:` where `N` is the block
//! index, so parsed modules have stable block ids.

use std::fmt::Write as _;

use crate::function::{Function, Module};
use crate::inst::{MemWidth, Op, Operand, Terminator};

/// Prints a whole module.
#[must_use]
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for global in &module.globals {
        let kind = if global.mutable { "mutable" } else { "const" };
        let data = if global.data.is_empty() {
            "-".to_string()
        } else {
            global.data.iter().map(|b| format!("{b:02x}")).collect()
        };
        let _ = writeln!(out, "global @{} {} {}", global.name, kind, data);
    }
    if !module.globals.is_empty() {
        out.push('\n');
    }
    for (i, function) in module.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(function));
    }
    out
}

/// Prints a single function.
#[must_use]
pub fn print_function(function: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = function.params.iter().map(|p| format!("{p}")).collect();
    let attr = if function.attrs.protect_branches {
        " protect_branches"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "func @{}({}){} {{",
        function.name,
        params.join(", "),
        attr
    );
    for (i, local) in function.locals.iter().enumerate() {
        let _ = writeln!(
            out,
            "  local $l{} {} \"{}\"",
            i, local.size_bytes, local.name
        );
    }
    for (bid, block) in function.iter_blocks() {
        let _ = writeln!(out, "{bid}:  ; {}", block.name);
        for inst in &block.insts {
            let _ = writeln!(
                out,
                "  {}",
                print_inst_op(inst.result.map(|r| format!("{r}")), &inst.op)
            );
        }
        if let Some(term) = &block.terminator {
            let _ = writeln!(out, "  {}", print_terminator(term));
        }
    }
    out.push_str("}\n");
    out
}

fn width_suffix(width: MemWidth) -> &'static str {
    match width {
        MemWidth::Byte => "b",
        MemWidth::Word => "w",
    }
}

fn print_inst_op(result: Option<String>, op: &Op) -> String {
    let rhs = match op {
        Op::Bin { op, lhs, rhs } => format!("{} {}, {}", op.mnemonic(), lhs, rhs),
        Op::Cmp { pred, lhs, rhs } => format!("cmp {} {}, {}", pred.mnemonic(), lhs, rhs),
        Op::Select {
            cond,
            if_true,
            if_false,
        } => format!("select {cond}, {if_true}, {if_false}"),
        Op::Load { addr, width } => format!("load.{} {}", width_suffix(*width), addr),
        Op::Store { addr, value, width } => {
            format!("store.{} {}, {}", width_suffix(*width), addr, value)
        }
        Op::LocalAddr { local } => format!("localaddr {local}"),
        Op::GlobalAddr { name } => format!("globaladdr @{name}"),
        Op::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(|a| format!("{a}")).collect();
            format!("call @{}({})", callee, args.join(", "))
        }
        Op::EncodedCompare {
            pred,
            lhs,
            rhs,
            a,
            c,
        } => format!("enccmp {} {}, {}, {}, {}", pred.mnemonic(), lhs, rhs, a, c),
    };
    match result {
        Some(r) => format!("{r} = {rhs}"),
        None => rhs,
    }
}

fn print_terminator(term: &Terminator) -> String {
    match term {
        Terminator::Jump(t) => format!("jmp {t}"),
        Terminator::Branch {
            cond,
            if_true,
            if_false,
            protection,
        } => match protection {
            None => format!("br {cond}, {if_true}, {if_false}"),
            Some(p) => format!(
                "br {cond}, {if_true}, {if_false}, protect({}, {}, {})",
                p.condition, p.true_symbol, p.false_symbol
            ),
        },
        Terminator::Switch {
            value,
            default,
            cases,
        } => {
            let cases: Vec<String> = cases.iter().map(|(v, b)| format!("{v}: {b}")).collect();
            format!("switch {value}, {default}, [{}]", cases.join(", "))
        }
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Ret(Some(v)) => format!("ret {v}"),
    }
}

/// Prints one operand (used in diagnostics and tests).
#[must_use]
pub fn print_operand(op: &Operand) -> String {
    format!("{op}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Predicate};
    use crate::Module;

    #[test]
    fn prints_function_with_all_constructs() {
        let mut m = Module::new();
        m.add_global("table", vec![0xDE, 0xAD], false);
        m.add_global("scratch", vec![], true);

        let mut callee = FunctionBuilder::new("callee", 1);
        callee.ret(Some(callee.param(0)));
        m.add_function(callee.finish());

        let mut b = FunctionBuilder::new("main", 2);
        b.protect_branches();
        let (x, y) = (b.param(0), b.param(1));
        let slot = b.local("tmp", 8);
        let t = b.create_block("then");
        let e = b.create_block("else");
        let s = b.bin(BinOp::Add, x, y);
        let la = b.local_addr(slot);
        b.store(la, s);
        let ga = b.global_addr("table");
        let byte = b.load_byte(ga);
        let sel = b.select(byte, x, y);
        let called = b.call("callee", &[sel]);
        let enc = b.encoded_compare(Predicate::Eq, called, s, 63_877, 14_991);
        let flag = b.cmp(Predicate::Eq, enc, 29_982u32);
        b.branch(flag, t, e);
        b.switch_to(t);
        b.ret(Some(s));
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish());

        let text = print_module(&m);
        assert!(text.contains("global @table const dead"));
        assert!(text.contains("global @scratch mutable -"));
        assert!(text.contains("func @main(%0, %1) protect_branches {"));
        assert!(text.contains("local $l0 8 \"tmp\""));
        assert!(text.contains("store.w"));
        assert!(text.contains("load.b"));
        assert!(text.contains("enccmp eq"));
        assert!(text.contains("call @callee("));
        assert!(text.contains("br %"));
        assert!(text.contains("ret %"));
    }

    #[test]
    fn prints_switch_and_protected_branch() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let a = b.create_block("a");
        let c = b.create_block("c");
        b.switch(x, a, &[(1, c), (2, a)]);
        b.switch_to(a);
        let enc = b.encoded_compare(Predicate::Ult, x, 5u32, 63_877, 29_982);
        let flag = b.cmp(Predicate::Eq, enc, 35_552u32);
        b.protected_branch(
            flag,
            c,
            a,
            crate::inst::BranchProtection {
                condition: enc,
                true_symbol: 35_552,
                false_symbol: 29_982,
            },
        );
        b.switch_to(c);
        b.ret(None);
        let f = b.finish_unchecked();
        let text = print_function(&f);
        assert!(text.contains("switch %0, bb1, [1: bb2, 2: bb1]"));
        assert!(text.contains("protect(%1, 35552, 29982)"));
    }
}
