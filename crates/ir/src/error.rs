//! Error type shared by the IR verifier, interpreter and parser.

use std::error::Error;
use std::fmt;

/// Errors produced by the IR crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A structural verification failure (definition does not dominate a use,
    /// dangling block target, malformed function, …).
    Verification {
        /// The function in which the problem was found.
        function: String,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The interpreter encountered a runtime problem (missing function,
    /// out-of-bounds memory access, call depth exceeded, …).
    Interpretation {
        /// Human-readable description of the problem.
        message: String,
    },
    /// The textual parser rejected its input.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl IrError {
    /// Convenience constructor for verification errors.
    #[must_use]
    pub fn verification(function: impl Into<String>, message: impl Into<String>) -> Self {
        IrError::Verification {
            function: function.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for interpreter errors.
    #[must_use]
    pub fn interp(message: impl Into<String>) -> Self {
        IrError::Interpretation {
            message: message.into(),
        }
    }

    /// Convenience constructor for parse errors.
    #[must_use]
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        IrError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Verification { function, message } => {
                write!(f, "verification of function '{function}' failed: {message}")
            }
            IrError::Interpretation { message } => write!(f, "interpretation failed: {message}"),
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = IrError::verification("main", "use before definition of %3");
        assert!(e.to_string().contains("main"));
        assert!(e.to_string().contains("%3"));
        let e = IrError::parse(7, "unknown mnemonic");
        assert!(e.to_string().contains("line 7"));
    }
}
