//! Control-flow-graph utilities: successor/predecessor maps, reverse
//! post-order and dominators.
//!
//! These analyses are shared by the verifier (definitions must dominate
//! uses), the middle-end passes (loop detection for the Loop Decoupler) and
//! the back end's CFI instrumentation (justifying values are computed per
//! CFG edge).

use std::collections::HashMap;

use crate::function::Function;
use crate::inst::BlockId;

/// Successor and predecessor maps of a function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    successors: Vec<Vec<BlockId>>,
    predecessors: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of a function. Blocks without a terminator contribute
    /// no edges (the verifier rejects such functions separately).
    #[must_use]
    pub fn new(function: &Function) -> Self {
        let n = function.blocks.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for (id, block) in function.iter_blocks() {
            if let Some(term) = &block.terminator {
                for succ in term.successors() {
                    successors[id.0 as usize].push(succ);
                    if (succ.0 as usize) < n {
                        predecessors[succ.0 as usize].push(id);
                    }
                }
            }
        }
        Cfg {
            successors,
            predecessors,
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.successors.len()
    }

    /// Successors of a block (in edge order, duplicates possible for
    /// switches with repeated targets).
    #[must_use]
    pub fn successors(&self, block: BlockId) -> &[BlockId] {
        &self.successors[block.0 as usize]
    }

    /// Predecessors of a block.
    #[must_use]
    pub fn predecessors(&self, block: BlockId) -> &[BlockId] {
        &self.predecessors[block.0 as usize]
    }

    /// Blocks reachable from the entry, in reverse post-order (a topological
    /// order ignoring back edges).
    #[must_use]
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.block_count();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        if n == 0 {
            return post;
        }
        visited[0] = true;
        stack.push((BlockId(0), 0));
        while let Some((block, idx)) = stack.pop() {
            let succs = self.successors(block);
            if idx < succs.len() {
                stack.push((block, idx + 1));
                let next = succs[idx];
                let ni = next.0 as usize;
                if ni < n && !visited[ni] {
                    visited[ni] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(block);
            }
        }
        post.reverse();
        post
    }

    /// Blocks unreachable from the entry.
    #[must_use]
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        let reachable: Vec<BlockId> = self.reverse_post_order();
        let mut seen = vec![false; self.block_count()];
        for b in &reachable {
            seen[b.0 as usize] = true;
        }
        (0..self.block_count())
            .filter(|i| !seen[*i])
            .map(|i| BlockId(i as u32))
            .collect()
    }
}

/// Immediate-dominator tree of the reachable part of a CFG, computed with the
/// Cooper–Harvey–Kennedy iterative algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry's idom is the
    /// entry itself. Unreachable blocks are absent.
    idom: HashMap<BlockId, BlockId>,
    rpo_index: HashMap<BlockId, usize>,
}

impl Dominators {
    /// Computes the dominator tree of the reachable blocks.
    #[must_use]
    pub fn new(cfg: &Cfg) -> Self {
        let rpo = cfg.reverse_post_order();
        let mut rpo_index = HashMap::new();
        for (i, b) in rpo.iter().enumerate() {
            rpo_index.insert(*b, i);
        }
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        if rpo.is_empty() {
            return Dominators { idom, rpo_index };
        }
        let entry = rpo[0];
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor that already has an idom.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.predecessors(b) {
                    if !rpo_index.contains_key(&p) {
                        continue; // unreachable predecessor
                    }
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, cur, p),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// Returns `true` if `a` dominates `b` (every path from the entry to `b`
    /// passes through `a`). A block dominates itself. Returns `false` if
    /// either block is unreachable.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.idom.contains_key(&a) || !self.idom.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let parent = self.idom[&cur];
            if parent == cur {
                return false; // reached the entry
            }
            cur = parent;
        }
    }

    /// The immediate dominator of a reachable, non-entry block.
    #[must_use]
    pub fn immediate_dominator(&self, block: BlockId) -> Option<BlockId> {
        let d = *self.idom.get(&block)?;
        if d == block {
            None
        } else {
            Some(d)
        }
    }

    /// Whether the block is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.idom.contains_key(&block)
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Detects natural-loop back edges: edges `tail -> head` where `head`
/// dominates `tail`. Returns `(tail, head)` pairs.
#[must_use]
pub fn back_edges(cfg: &Cfg, doms: &Dominators) -> Vec<(BlockId, BlockId)> {
    let mut edges = Vec::new();
    for b in 0..cfg.block_count() {
        let tail = BlockId(b as u32);
        if !doms.is_reachable(tail) {
            continue;
        }
        for &head in cfg.successors(tail) {
            if doms.dominates(head, tail) {
                edges.push((tail, head));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Predicate;

    /// Builds a diamond: entry -> {then, else} -> merge -> ret.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond", 1);
        let x = b.param(0);
        let then_bb = b.create_block("then");
        let else_bb = b.create_block("else");
        let merge = b.create_block("merge");
        let c = b.cmp(Predicate::Ne, x, 0u32);
        b.branch(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.jump(merge);
        b.switch_to(else_bb);
        b.jump(merge);
        b.switch_to(merge);
        b.ret(None);
        b.finish()
    }

    /// Builds a loop: entry -> header -> {body -> header, exit}.
    fn simple_loop() -> Function {
        let mut b = FunctionBuilder::new("loop", 1);
        let n = b.param(0);
        let i = b.local("i", 4);
        b.store_local(i, 0u32);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let iv = b.load_local(i);
        let c = b.cmp(Predicate::Ult, iv, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let iv = b.load_local(i);
        let next = b.bin(crate::inst::BinOp::Add, iv, 1u32);
        b.store_local(i, next);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.successors(BlockId(0)).len(), 2);
        assert_eq!(cfg.predecessors(BlockId(3)).len(), 2);
        assert!(cfg.unreachable_blocks().is_empty());
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
        // merge must come after both then and else in RPO.
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).expect("reachable");
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        let entry = BlockId(0);
        for b in 0..4 {
            assert!(doms.dominates(entry, BlockId(b)));
        }
        // Neither arm dominates the merge.
        assert!(!doms.dominates(BlockId(1), BlockId(3)));
        assert!(!doms.dominates(BlockId(2), BlockId(3)));
        assert_eq!(doms.immediate_dominator(BlockId(3)), Some(entry));
        assert_eq!(doms.immediate_dominator(entry), None);
    }

    #[test]
    fn loop_back_edge_detection() {
        let f = simple_loop();
        let cfg = Cfg::new(&f);
        let doms = Dominators::new(&cfg);
        let edges = back_edges(&cfg, &doms);
        assert_eq!(edges, vec![(BlockId(2), BlockId(1))]);
    }

    #[test]
    fn unreachable_blocks_are_reported_and_not_dominated() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.create_block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.unreachable_blocks(), vec![dead]);
        let doms = Dominators::new(&cfg);
        assert!(!doms.is_reachable(dead));
        assert!(!doms.dominates(BlockId(0), dead));
    }
}
