//! Functions, basic blocks, locals, globals and modules.

use crate::inst::{BlockId, Inst, LocalId, Operand, Terminator, ValueId};

/// A function-local stack slot (the IR's `alloca`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Local {
    /// Human-readable name (for printing only).
    pub name: String,
    /// Size of the slot in bytes (word-aligned by the back end).
    pub size_bytes: u32,
}

/// Attributes controlling how the pipeline treats a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FunctionAttrs {
    /// The paper's `protect_branches` attribute: the AN Coder pass protects
    /// the conditional branches of annotated functions.
    pub protect_branches: bool,
}

/// A basic block: a straight-line instruction sequence ending in a single
/// terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Human-readable label.
    pub name: String,
    /// The block body.
    pub insts: Vec<Inst>,
    /// The terminator; `None` only while the block is still being built.
    pub terminator: Option<Terminator>,
}

impl Block {
    /// Creates an empty, unterminated block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Block {
            name: name.into(),
            insts: Vec::new(),
            terminator: None,
        }
    }
}

/// A function: parameters, locals, basic blocks (block 0 is the entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (call target).
    pub name: String,
    /// Parameter values (`%0 .. %n-1`).
    pub params: Vec<ValueId>,
    /// Stack slots.
    pub locals: Vec<Local>,
    /// Basic blocks; index 0 is the entry block.
    pub blocks: Vec<Block>,
    /// Pipeline attributes.
    pub attrs: FunctionAttrs,
    next_value: u32,
}

impl Function {
    /// Creates a function with `param_count` parameters and an empty entry
    /// block named `entry`.
    #[must_use]
    pub fn new(name: impl Into<String>, param_count: usize) -> Self {
        let params: Vec<ValueId> = (0..param_count as u32).map(ValueId).collect();
        Function {
            name: name.into(),
            params,
            locals: Vec::new(),
            blocks: vec![Block::new("entry")],
            attrs: FunctionAttrs::default(),
            next_value: param_count as u32,
        }
    }

    /// The entry block id (always block 0).
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh value id.
    pub fn fresh_value(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        v
    }

    /// Number of value ids allocated so far (parameters included).
    #[must_use]
    pub fn value_count(&self) -> u32 {
        self.next_value
    }

    /// Ensures the internal value counter is at least `n`. Used by the parser
    /// which learns value ids from the text.
    pub fn reserve_values(&mut self, n: u32) {
        self.next_value = self.next_value.max(n);
    }

    /// Adds a new (empty, unterminated) block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(name));
        id
    }

    /// Adds a stack slot and returns its id.
    pub fn add_local(&mut self, name: impl Into<String>, size_bytes: u32) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local {
            name: name.into(),
            size_bytes,
        });
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block id does not belong to this function.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Exclusive access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block id does not belong to this function.
    #[must_use]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Iterates over `(BlockId, &Block)` pairs in definition order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of instructions (terminators excluded).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Returns every conditional-branch terminator's block id.
    #[must_use]
    pub fn conditional_branches(&self) -> Vec<BlockId> {
        self.iter_blocks()
            .filter(|(_, b)| matches!(b.terminator, Some(Terminator::Branch { .. })))
            .map(|(id, _)| id)
            .collect()
    }
}

/// A module global: named, initialised byte data placed in guest memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name used by `GlobalAddr` operations.
    pub name: String,
    /// Initial contents.
    pub data: Vec<u8>,
    /// Whether guest code may write to it.
    pub mutable: bool,
}

/// A compilation unit: functions plus globals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// The functions of the module.
    pub functions: Vec<Function>,
    /// The globals of the module.
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function (replacing any previous function of the same name).
    pub fn add_function(&mut self, function: Function) {
        if let Some(existing) = self.functions.iter_mut().find(|f| f.name == function.name) {
            *existing = function;
        } else {
            self.functions.push(function);
        }
    }

    /// Adds a global (replacing any previous global of the same name) and
    /// returns its name for convenience.
    pub fn add_global(&mut self, name: impl Into<String>, data: Vec<u8>, mutable: bool) -> String {
        let name = name.into();
        let global = Global {
            name: name.clone(),
            data,
            mutable,
        };
        if let Some(existing) = self.globals.iter_mut().find(|g| g.name == name) {
            *existing = global;
        } else {
            self.globals.push(global);
        }
        name
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function by name, mutably.
    #[must_use]
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total instruction count over all functions (a rough size metric used
    /// in reports and tests).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }
}

/// Helper for passes: iterate over all operands used in a function (including
/// terminator operands).
#[must_use]
pub fn all_operands(function: &Function) -> Vec<Operand> {
    let mut ops = Vec::new();
    for block in &function.blocks {
        for inst in &block.insts {
            ops.extend(inst.op.operands());
        }
        if let Some(term) = &block.terminator {
            ops.extend(term.operands());
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Op};

    #[test]
    fn function_creation_allocates_params() {
        let f = Function::new("f", 3);
        assert_eq!(f.params, vec![ValueId(0), ValueId(1), ValueId(2)]);
        assert_eq!(f.value_count(), 3);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn fresh_values_are_unique() {
        let mut f = Function::new("f", 1);
        let a = f.fresh_value();
        let b = f.fresh_value();
        assert_ne!(a, b);
        assert_eq!(f.value_count(), 3);
        f.reserve_values(10);
        assert_eq!(f.value_count(), 10);
        f.reserve_values(5);
        assert_eq!(f.value_count(), 10, "reserve never shrinks");
    }

    #[test]
    fn blocks_and_locals_get_sequential_ids() {
        let mut f = Function::new("f", 0);
        let b1 = f.add_block("loop");
        let b2 = f.add_block("exit");
        assert_eq!(b1, BlockId(1));
        assert_eq!(b2, BlockId(2));
        let l0 = f.add_local("i", 4);
        let l1 = f.add_local("buf", 64);
        assert_eq!(l0, LocalId(0));
        assert_eq!(l1, LocalId(1));
        assert_eq!(f.locals[1].size_bytes, 64);
    }

    #[test]
    fn module_replaces_functions_and_globals_by_name() {
        let mut m = Module::new();
        m.add_function(Function::new("f", 1));
        m.add_function(Function::new("f", 2));
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.function("f").expect("present").params.len(), 2);

        m.add_global("g", vec![1, 2, 3], false);
        m.add_global("g", vec![9], true);
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.global("g").expect("present").data, vec![9]);
        assert!(m.global("missing").is_none());
    }

    #[test]
    fn inst_count_sums_blocks() {
        let mut f = Function::new("f", 0);
        let v = f.fresh_value();
        f.block_mut(BlockId(0)).insts.push(Inst {
            result: Some(v),
            op: Op::Bin {
                op: BinOp::Add,
                lhs: Operand::Const(1),
                rhs: Operand::Const(2),
            },
        });
        let b = f.add_block("next");
        let w = f.fresh_value();
        f.block_mut(b).insts.push(Inst {
            result: Some(w),
            op: Op::Bin {
                op: BinOp::Sub,
                lhs: Operand::Value(v),
                rhs: Operand::Const(1),
            },
        });
        assert_eq!(f.inst_count(), 2);
        let mut m = Module::new();
        m.add_function(f);
        assert_eq!(m.inst_count(), 2);
    }

    #[test]
    fn conditional_branch_listing() {
        let mut f = Function::new("f", 1);
        let t = f.add_block("t");
        let e = f.add_block("e");
        f.block_mut(BlockId(0)).terminator = Some(Terminator::Branch {
            cond: Operand::Value(ValueId(0)),
            if_true: t,
            if_false: e,
            protection: None,
        });
        f.block_mut(t).terminator = Some(Terminator::Ret(None));
        f.block_mut(e).terminator = Some(Terminator::Ret(None));
        assert_eq!(f.conditional_branches(), vec![BlockId(0)]);
    }
}
