//! The machine state: registers, flags, memory and the memory-mapped CFI
//! unit.

use secbranch_cfi::CfiMonitor;

use crate::error::SimError;
use crate::instr::{Cond, Reg};

/// Base address of the memory-mapped CFI unit.
pub const CFI_BASE: u32 = 0xE000_0000;
/// Store address: XOR the stored value into the CFI state (edge updates,
/// justifying values and merged condition values).
pub const CFI_UPDATE_ADDR: u32 = CFI_BASE;
/// Store address: check the CFI state against the stored expected signature.
pub const CFI_CHECK_ADDR: u32 = CFI_BASE + 4;
/// Store address: replace the CFI state with the stored value (used at
/// function entry).
pub const CFI_REPLACE_ADDR: u32 = CFI_BASE + 8;
/// Load address: the current CFI state.
pub const CFI_STATE_ADDR: u32 = CFI_BASE + 12;
/// Load address: the number of CFI violations latched so far.
pub const CFI_VIOLATIONS_ADDR: u32 = CFI_BASE + 16;

/// The magic link-register value that terminates execution when branched to
/// (the simulator's "return to the test harness" address).
pub const RETURN_MAGIC: u32 = 0xFFFF_FFF1;

/// NZCV condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry (for `CMP`: no borrow, i.e. `lhs >= rhs` unsigned).
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

impl Flags {
    /// Sets the flags from the comparison `lhs - rhs` (as `CMP` does).
    pub fn set_from_cmp(&mut self, lhs: u32, rhs: u32) {
        let (result, borrow) = lhs.overflowing_sub(rhs);
        self.n = (result as i32) < 0;
        self.z = result == 0;
        self.c = !borrow;
        self.v = ((lhs ^ rhs) & (lhs ^ result)) >> 31 == 1;
    }

    /// Packs the flags into the upper bits of an APSR-style word
    /// (N=31, Z=30, C=29, V=28). Used by fault models that flip flag bits.
    #[must_use]
    pub fn to_bits(self) -> u32 {
        (u32::from(self.n) << 31)
            | (u32::from(self.z) << 30)
            | (u32::from(self.c) << 29)
            | (u32::from(self.v) << 28)
    }

    /// Restores flags from a packed APSR-style word.
    #[must_use]
    pub fn from_bits(bits: u32) -> Self {
        Flags {
            n: bits >> 31 & 1 == 1,
            z: bits >> 30 & 1 == 1,
            c: bits >> 29 & 1 == 1,
            v: bits >> 28 & 1 == 1,
        }
    }

    /// `true` if these flags satisfy `cond` (the branch-taken decision of
    /// `BCond`). The single home of the condition semantics, shared by the
    /// simulator and the fault models that tamper with flags.
    #[must_use]
    pub fn condition_holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.z,
            Cond::Ne => !self.z,
            Cond::Lo => !self.c,
            Cond::Hs => self.c,
            Cond::Hi => self.c && !self.z,
            Cond::Ls => !self.c || self.z,
        }
    }
}

/// A compact architectural snapshot of a [`Machine`] mid-run, captured by
/// [`Machine::snapshot`] and replayed by [`Machine::restore`].
///
/// Only the dirty RAM window is stored (untouched RAM is all-zero by
/// construction), so a snapshot of a short run costs kilobytes even on a
/// megabyte machine.
#[derive(Debug, Clone)]
pub struct MachineState {
    regs: [u32; 16],
    flags: Flags,
    cfi: CfiMonitor,
    /// `(base address, bytes)` of each dirty RAM window (at most
    /// [`DIRTY_WINDOWS`]).
    segments: Vec<(u32, Vec<u8>)>,
}

impl MachineState {
    /// Total size of the stored dirty RAM in bytes.
    #[must_use]
    pub fn dirty_len(&self) -> usize {
        self.segments.iter().map(|(_, bytes)| bytes.len()).sum()
    }

    /// The sixteen core registers (r0–r12, sp, lr, pc), in index order.
    #[must_use]
    pub fn regs(&self) -> &[u32; 16] {
        &self.regs
    }

    /// The condition flags.
    #[must_use]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The captured CFI unit.
    #[must_use]
    pub fn cfi(&self) -> &CfiMonitor {
        &self.cfi
    }

    /// The dirty RAM segments, as `(base address, bytes)` in capture order.
    #[must_use]
    pub fn segments(&self) -> &[(u32, Vec<u8>)] {
        &self.segments
    }

    /// Reassembles a state from its parts — the inverse of the accessors,
    /// for persistence layers that serialise snapshots. A state built from
    /// the parts of [`Machine::snapshot`] restores bit-identically to the
    /// original snapshot.
    #[must_use]
    pub fn from_parts(
        regs: [u32; 16],
        flags: Flags,
        cfi: CfiMonitor,
        segments: Vec<(u32, Vec<u8>)>,
    ) -> Self {
        MachineState {
            regs,
            flags,
            cfi,
            segments,
        }
    }
}

/// Number of disjoint dirty windows a [`Machine`] tracks. Two matches the
/// memory layout of compiled modules — globals near the bottom of RAM, the
/// stack at the top — so neither scrubbing nor snapshotting ever touches
/// the untouched gulf between them.
pub const DIRTY_WINDOWS: usize = 2;

/// Writes closer than this to an existing dirty window extend it; farther
/// ones open a new window (while one is free). Keeps frame-local store
/// scatter in one window without fusing the globals and stack regions.
const DIRTY_GAP_THRESHOLD: u32 = 4096;

/// A dirty address window `[lo, hi)`; `EMPTY_WINDOW` when nothing was
/// written.
type DirtyWindow = (u32, u32);

const EMPTY_WINDOW: DirtyWindow = (u32::MAX, 0);

/// Registers, flags, memory and the CFI unit of the simulated core.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u32; 16],
    /// Condition flags.
    pub flags: Flags,
    memory: Vec<u8>,
    /// The memory-mapped CFI unit.
    pub cfi: CfiMonitor,
    /// The RAM written since construction or the last [`Machine::scrub`],
    /// as up to [`DIRTY_WINDOWS`] disjoint `[lo, hi)` windows.
    dirty: [DirtyWindow; DIRTY_WINDOWS],
}

impl Machine {
    /// Creates a machine with `memory_size` bytes of RAM, all registers
    /// zeroed and the stack pointer at the top of memory.
    #[must_use]
    pub fn new(memory_size: u32) -> Self {
        let mut regs = [0u32; 16];
        regs[Reg::Sp.index()] = memory_size & !7;
        Machine {
            regs,
            flags: Flags::default(),
            memory: vec![0u8; memory_size as usize],
            cfi: CfiMonitor::new(0),
            dirty: [EMPTY_WINDOW; DIRTY_WINDOWS],
        }
    }

    /// Records that `[addr, addr + len)` was written. Every RAM write goes
    /// through this, which is what makes [`Machine::scrub`] exact. The
    /// write extends the nearest existing window when it is close
    /// (`DIRTY_GAP_THRESHOLD`), otherwise opens a free window; with all
    /// windows taken, the nearest one absorbs it.
    #[inline]
    fn mark_dirty(&mut self, addr: u32, len: u32) {
        if len == 0 {
            return;
        }
        let hi = addr + len;
        // Fast path: the write lands inside an existing window — the
        // steady state of any loop re-writing its stack frame or globals.
        for &(w_lo, w_hi) in &self.dirty {
            if addr >= w_lo && hi <= w_hi {
                return;
            }
        }
        let mut nearest = 0usize;
        let mut nearest_gap = u32::MAX;
        for (index, &(w_lo, w_hi)) in self.dirty.iter().enumerate() {
            if (w_lo, w_hi) == EMPTY_WINDOW {
                continue;
            }
            // Gap between [addr, hi) and [w_lo, w_hi); 0 when they overlap
            // or touch.
            let gap = if addr > w_hi {
                addr - w_hi
            } else {
                w_lo.saturating_sub(hi)
            };
            if gap < nearest_gap {
                nearest_gap = gap;
                nearest = index;
            }
        }
        if nearest_gap > DIRTY_GAP_THRESHOLD {
            if let Some(free) = self.dirty.iter().position(|w| *w == EMPTY_WINDOW) {
                self.dirty[free] = (addr, hi);
                return;
            }
        }
        let window = &mut self.dirty[nearest];
        window.0 = window.0.min(addr);
        window.1 = window.1.max(hi);
    }

    /// The dirty windows, clamped to RAM, in storage order.
    fn dirty_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let len = self.memory.len();
        self.dirty
            .iter()
            .filter(|w| **w != EMPTY_WINDOW)
            .map(move |&(lo, hi)| (lo as usize, (hi as usize).min(len)))
            .filter(|(lo, hi)| lo < hi)
    }

    /// Captures the machine's full architectural state mid-run as a compact
    /// snapshot: registers, flags, the CFI unit, and exactly the RAM bytes
    /// written so far (the dirty window — untouched RAM is zero by
    /// construction and need not be copied).
    ///
    /// Restoring via [`Machine::restore`] reproduces the machine
    /// bit-for-bit, which is what lets fault campaigns fast-forward
    /// injections to a checkpoint instead of re-executing the reference
    /// prefix.
    #[must_use]
    pub fn snapshot(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            flags: self.flags,
            cfi: self.cfi.clone(),
            segments: self
                .dirty_ranges()
                .map(|(lo, hi)| (lo as u32, self.memory[lo..hi].to_vec()))
                .collect(),
        }
    }

    /// Restores a state captured by [`Machine::snapshot`] (on this machine
    /// or any machine of the same memory size): scrubs to pristine, then
    /// replays the snapshot's registers, flags, CFI unit and dirty RAM.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's dirty window does not fit this machine's
    /// RAM (snapshots only make sense across equally-sized machines).
    pub fn restore(&mut self, state: &MachineState) {
        self.scrub();
        for (base, bytes) in &state.segments {
            self.write_bytes(*base, bytes);
        }
        self.regs = state.regs;
        self.flags = state.flags;
        self.cfi = state.cfi.clone();
    }

    /// Restores the machine to the state [`Machine::new`] produced, without
    /// reallocating: zeroes exactly the RAM range written since construction
    /// (or the previous scrub), resets registers, flags and the CFI unit.
    ///
    /// This is the cheap path campaign workers use to reuse one machine
    /// across millions of injections — a short run touching a few hundred
    /// stack bytes pays for those bytes, not for the whole RAM allocation.
    /// Callers that seeded memory (e.g. a globals image) must rewrite it
    /// afterwards.
    pub fn scrub(&mut self) {
        let ranges: Vec<(usize, usize)> = self.dirty_ranges().collect();
        for (lo, hi) in ranges {
            self.memory[lo..hi].fill(0);
        }
        self.dirty = [EMPTY_WINDOW; DIRTY_WINDOWS];
        self.regs = [0u32; 16];
        self.regs[Reg::Sp.index()] = self.memory_size() & !7;
        self.flags = Flags::default();
        self.cfi = CfiMonitor::new(0);
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Reads a register by architectural index. The micro-op fast path:
    /// indices are pre-validated (< 16) at decode time, so the `& 15` is a
    /// no-op that exists purely to erase the bounds-check branch from the
    /// interpreter's hottest loop.
    #[inline]
    #[must_use]
    pub(crate) fn reg_index(&self, index: u8) -> u32 {
        self.regs[usize::from(index) & 15]
    }

    /// Writes a register by architectural index (micro-op fast path; see
    /// [`Machine::reg_index`] for the masking).
    #[inline]
    pub(crate) fn set_reg_index(&mut self, index: u8, value: u32) {
        self.regs[usize::from(index) & 15] = value;
    }

    /// Size of RAM in bytes.
    #[must_use]
    pub fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }

    /// Reads a 32-bit word (little endian). Addresses in the CFI window read
    /// the unit's registers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] for out-of-bounds accesses.
    pub fn load_word(&mut self, addr: u32) -> Result<u32, SimError> {
        if addr >= CFI_BASE {
            return Ok(match addr {
                CFI_STATE_ADDR => self.cfi.state(),
                CFI_VIOLATIONS_ADDR => self.cfi.violations(),
                _ => 0,
            });
        }
        let end = addr as usize + 4;
        if end > self.memory.len() {
            return Err(SimError::MemoryFault {
                address: addr,
                size: 4,
                is_store: false,
            });
        }
        Ok(u32::from_le_bytes(
            self.memory[addr as usize..end]
                .try_into()
                .expect("length checked"),
        ))
    }

    /// Writes a 32-bit word. Addresses in the CFI window drive the unit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] for out-of-bounds accesses.
    pub fn store_word(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        if addr >= CFI_BASE {
            match addr {
                CFI_UPDATE_ADDR => self.cfi.update(value),
                CFI_CHECK_ADDR => self.cfi.check(value),
                CFI_REPLACE_ADDR => self.cfi.replace(value),
                _ => {}
            }
            return Ok(());
        }
        let end = addr as usize + 4;
        if end > self.memory.len() {
            return Err(SimError::MemoryFault {
                address: addr,
                size: 4,
                is_store: true,
            });
        }
        self.memory[addr as usize..end].copy_from_slice(&value.to_le_bytes());
        self.mark_dirty(addr, 4);
        Ok(())
    }

    /// Reads a byte (zero-extended).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] for out-of-bounds accesses.
    pub fn load_byte(&mut self, addr: u32) -> Result<u32, SimError> {
        if addr >= CFI_BASE {
            return Ok(0);
        }
        self.memory
            .get(addr as usize)
            .map(|b| u32::from(*b))
            .ok_or(SimError::MemoryFault {
                address: addr,
                size: 1,
                is_store: false,
            })
    }

    /// Writes a byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryFault`] for out-of-bounds accesses.
    pub fn store_byte(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        if addr >= CFI_BASE {
            return Ok(());
        }
        match self.memory.get_mut(addr as usize) {
            Some(b) => {
                *b = value as u8;
                self.mark_dirty(addr, 1);
                Ok(())
            }
            None => Err(SimError::MemoryFault {
                address: addr,
                size: 1,
                is_store: true,
            }),
        }
    }

    /// Copies bytes into RAM (workload setup).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.memory[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        self.mark_dirty(addr, data.len() as u32);
    }

    /// Reads bytes from RAM (result inspection).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: u32) -> &[u8] {
        &self.memory[addr as usize..(addr + len) as usize]
    }

    /// `true` if the machine's full architectural state equals `state`:
    /// registers, flags, the CFI unit (including its check/violation
    /// counters) and every RAM byte.
    ///
    /// Memory equality is decided without touching untouched RAM: each of
    /// the snapshot's dirty segments must match this machine's RAM
    /// byte-for-byte, and every byte this machine has dirtied *outside*
    /// those segments must be zero (RAM outside a machine's dirty windows
    /// is zero by construction on both sides, so this is exact, not an
    /// approximation).
    ///
    /// This is the reconvergence test of differential fault campaigns: a
    /// faulted run whose state matches a reference checkpoint at the same
    /// step count is guaranteed to finish exactly like the reference.
    #[must_use]
    pub fn state_matches(&self, state: &MachineState) -> bool {
        self.cfi == state.cfi && self.core_state_matches(state)
    }

    /// `true` if the machine's *program-observable* state equals `state`:
    /// like [`Machine::state_matches`], except the CFI unit is compared only
    /// through what its MMIO window exposes — the signature state and the
    /// violation count. The check counter (and the first-violation detail it
    /// latches) has no load address, so it cannot influence where execution
    /// goes next.
    ///
    /// Within a single run this is the periodicity test of endless-loop
    /// detection: seeing the same program counter twice with
    /// observably-equal state, and no fault hook left to fire, proves the
    /// execution has entered a cycle it can never leave — every input to
    /// the interpreter's next transition is equal, and the only bits
    /// allowed to differ are monotone counters the program cannot read.
    #[must_use]
    pub fn state_repeats(&self, state: &MachineState) -> bool {
        self.cfi.state() == state.cfi.state()
            && self.cfi.violations() == state.cfi.violations()
            && self.core_state_matches(state)
    }

    /// The CFI-agnostic part of [`Machine::state_matches`]: registers,
    /// flags and every RAM byte.
    fn core_state_matches(&self, state: &MachineState) -> bool {
        if self.regs != state.regs || self.flags != state.flags {
            return false;
        }
        for (base, bytes) in &state.segments {
            let lo = *base as usize;
            let Some(hi) = lo.checked_add(bytes.len()) else {
                return false;
            };
            if hi > self.memory.len() || self.memory[lo..hi] != bytes[..] {
                return false;
            }
        }
        // Anything we dirtied beyond the snapshot's segments must have been
        // written back to zero.
        let mut covered: Vec<(usize, usize)> = state
            .segments
            .iter()
            .map(|(base, bytes)| (*base as usize, *base as usize + bytes.len()))
            .collect();
        covered.sort_unstable();
        for (lo, hi) in self.dirty_ranges() {
            let mut cursor = lo;
            for &(seg_lo, seg_hi) in &covered {
                if seg_hi <= cursor {
                    continue;
                }
                if seg_lo >= hi {
                    break;
                }
                let gap_end = seg_lo.min(hi);
                if cursor < gap_end && self.memory[cursor..gap_end].iter().any(|&b| b != 0) {
                    return false;
                }
                cursor = cursor.max(seg_hi);
                if cursor >= hi {
                    break;
                }
            }
            if cursor < hi && self.memory[cursor..hi].iter().any(|&b| b != 0) {
                return false;
            }
        }
        true
    }

    /// Flips a single bit of a register (fault model).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn flip_register_bit(&mut self, r: Reg, bit: u32) {
        assert!(bit < 32, "bit index {bit} out of range");
        self.regs[r.index()] ^= 1 << bit;
    }

    /// Flips a single bit of a memory byte (fault model).
    pub fn flip_memory_bit(&mut self, addr: u32, bit: u32) -> Result<(), SimError> {
        let byte = self.load_byte(addr)?;
        self.store_byte(addr, byte ^ (1 << (bit & 7)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_from_cmp() {
        let mut f = Flags::default();
        f.set_from_cmp(5, 5);
        assert!(f.z && f.c && !f.n);
        f.set_from_cmp(4, 5);
        assert!(!f.z && !f.c && f.n);
        f.set_from_cmp(6, 5);
        assert!(!f.z && f.c && !f.n);
        // Signed overflow: i32::MIN - 1 overflows.
        f.set_from_cmp(0x8000_0000, 1);
        assert!(f.v);
    }

    #[test]
    fn flags_pack_and_unpack() {
        let f = Flags {
            n: true,
            z: false,
            c: true,
            v: false,
        };
        assert_eq!(Flags::from_bits(f.to_bits()), f);
        assert_eq!(f.to_bits() & 0x0FFF_FFFF, 0);
    }

    #[test]
    fn registers_and_stack_pointer_initialisation() {
        let m = Machine::new(64 * 1024);
        assert_eq!(m.reg(Reg::Sp), 64 * 1024);
        assert_eq!(m.reg(Reg::R0), 0);
        assert_eq!(m.memory_size(), 64 * 1024);
    }

    #[test]
    fn word_and_byte_memory_accesses() {
        let mut m = Machine::new(1024);
        m.store_word(16, 0xDEAD_BEEF).expect("in range");
        assert_eq!(m.load_word(16).expect("in range"), 0xDEAD_BEEF);
        assert_eq!(m.load_byte(16).expect("in range"), 0xEF, "little endian");
        m.store_byte(16, 0x12).expect("in range");
        assert_eq!(m.load_word(16).expect("in range"), 0xDEAD_BE12);
        assert!(m.load_word(1022).is_err());
        assert!(m.store_word(4096, 1).is_err());
        assert!(m.load_byte(4096).is_err());
    }

    #[test]
    fn cfi_unit_is_memory_mapped() {
        let mut m = Machine::new(1024);
        m.cfi.replace(0x1111);
        m.store_word(CFI_UPDATE_ADDR, 0x1111 ^ 0x2222)
            .expect("mmio");
        assert_eq!(m.load_word(CFI_STATE_ADDR).expect("mmio"), 0x2222);
        m.store_word(CFI_CHECK_ADDR, 0x2222).expect("mmio");
        assert_eq!(m.load_word(CFI_VIOLATIONS_ADDR).expect("mmio"), 0);
        m.store_word(CFI_CHECK_ADDR, 0x9999).expect("mmio");
        assert_eq!(m.load_word(CFI_VIOLATIONS_ADDR).expect("mmio"), 1);
        m.store_word(CFI_REPLACE_ADDR, 0xABCD).expect("mmio");
        assert_eq!(m.cfi.state(), 0xABCD);
    }

    #[test]
    fn fault_helpers_flip_bits() {
        let mut m = Machine::new(1024);
        m.set_reg(Reg::R3, 0b100);
        m.flip_register_bit(Reg::R3, 0);
        assert_eq!(m.reg(Reg::R3), 0b101);
        m.store_byte(10, 0).expect("in range");
        m.flip_memory_bit(10, 3).expect("in range");
        assert_eq!(m.load_byte(10).expect("in range"), 8);
    }

    #[test]
    fn scrub_restores_the_pristine_state() {
        let mut m = Machine::new(1024);
        m.set_reg(Reg::R4, 7);
        m.flags.z = true;
        m.store_word(64, 0xDEAD_BEEF).expect("in range");
        m.store_byte(900, 0x5A).expect("in range");
        m.write_bytes(4, &[1, 2, 3]);
        m.cfi.replace(0x1234);
        m.cfi.check(0); // latches a violation
        m.scrub();

        let fresh = Machine::new(1024);
        assert_eq!(m.reg(Reg::R4), 0);
        assert_eq!(m.reg(Reg::Sp), fresh.reg(Reg::Sp));
        assert_eq!(m.flags, fresh.flags);
        assert_eq!(m.cfi, fresh.cfi);
        assert_eq!(m.read_bytes(0, 1024), fresh.read_bytes(0, 1024));
        // Scrubbing an untouched machine is a no-op.
        m.scrub();
        assert_eq!(m.read_bytes(0, 1024), fresh.read_bytes(0, 1024));
    }

    #[test]
    fn scrub_only_clears_what_was_written() {
        // The dirty window is exact: writes outside it never happen, so a
        // scrubbed machine equals a fresh one even after faults landed at
        // far-apart addresses.
        let mut m = Machine::new(1 << 16);
        m.flip_memory_bit(3, 0).expect("in range");
        m.flip_memory_bit(60_000, 7).expect("in range");
        m.scrub();
        let fresh = Machine::new(1 << 16);
        assert_eq!(m.read_bytes(0, 1 << 16), fresh.read_bytes(0, 1 << 16));
    }

    #[test]
    fn state_matches_detects_equality_and_every_divergence_kind() {
        let mut m = Machine::new(4096);
        m.set_reg(Reg::R1, 5);
        m.store_word(64, 0xDEAD_BEEF).expect("in range");
        m.cfi.replace(0x42);
        let state = m.snapshot();
        assert!(
            m.state_matches(&state),
            "a machine matches its own snapshot"
        );

        // A sibling restored from the snapshot matches too.
        let mut sibling = Machine::new(4096);
        sibling.restore(&state);
        assert!(sibling.state_matches(&state));

        // Register divergence.
        sibling.set_reg(Reg::R2, 1);
        assert!(!sibling.state_matches(&state));
        sibling.set_reg(Reg::R2, 0);
        assert!(sibling.state_matches(&state));

        // Flag divergence.
        sibling.flags.z = true;
        assert!(!sibling.state_matches(&state));
        sibling.flags.z = false;

        // CFI divergence (counters count, not just the state register).
        sibling.cfi.check(0x42);
        assert!(!sibling.state_matches(&state), "check counter differs");
        sibling.restore(&state);

        // Memory divergence inside the snapshot's segment.
        sibling.store_byte(64, 0x00).expect("in range");
        assert!(!sibling.state_matches(&state));
        sibling.store_word(64, 0xDEAD_BEEF).expect("in range");
        assert!(sibling.state_matches(&state));

        // Extra dirty bytes outside the segments: nonzero breaks equality,
        // written-back-to-zero preserves it.
        sibling.store_byte(3000, 7).expect("in range");
        assert!(!sibling.state_matches(&state));
        sibling.store_byte(3000, 0).expect("in range");
        assert!(sibling.state_matches(&state));
    }

    #[test]
    fn byte_copy_roundtrip() {
        let mut m = Machine::new(1024);
        m.write_bytes(100, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(100, 5), &[1, 2, 3, 4, 5]);
    }
}
