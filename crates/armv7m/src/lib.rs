//! An ARMv7-M-like instruction set, size/cycle models and a cycle-counting
//! CPU simulator with fault-injection hooks.
//!
//! The paper evaluates its countermeasure with "an ARMv7-M instruction set
//! architecture (ISA) simulator"; this crate is that substrate. It is not a
//! cycle-exact Cortex-M model — it implements the Thumb-2 subset the
//! secbranch back end emits, with:
//!
//! * a **size model** reproducing the 16-bit/32-bit Thumb-2 encoding split
//!   (so code-size numbers like Table II's 12-byte encoded compare come out
//!   of the same arithmetic the paper used), see [`Instr::size_bytes`],
//! * a **cycle model** with the timing facts the paper relies on (`UDIV`
//!   takes 2–12 data-dependent cycles, `MLS` 2, ALU operations 1, loads and
//!   stores 2, taken branches 2), see [`cycles`],
//! * a **[`Machine`]** with registers, NZCV flags, flat little-endian memory
//!   and a memory-mapped **CFI unit** (wrapping
//!   [`secbranch_cfi::CfiMonitor`]) at [`machine::CFI_BASE`], and
//! * a **[`Simulator`]** executing assembled [`Program`]s with optional
//!   [`FaultHook`]s, used by the fault-injection campaigns of the security
//!   evaluation (Section VI).
//!
//! # Example
//!
//! ```
//! use secbranch_armv7m::{program::ProgramBuilder, Instr, Operand2, Reg, Simulator};
//!
//! # fn main() -> Result<(), secbranch_armv7m::SimError> {
//! let mut p = ProgramBuilder::new();
//! p.label("double_plus_one");
//! p.push(Instr::Add { rd: Reg::R0, rn: Reg::R0, op2: Operand2::Reg(Reg::R0) });
//! p.push(Instr::Add { rd: Reg::R0, rn: Reg::R0, op2: Operand2::Imm(1) });
//! p.push(Instr::Bx { rm: Reg::Lr });
//! let program = p.assemble()?;
//!
//! let mut sim = Simulator::new(program, 64 * 1024);
//! let result = sim.call("double_plus_one", &[20], 1_000)?;
//! assert_eq!(result.return_value, 41);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
mod error;
mod instr;
pub mod machine;
pub mod program;
mod simulator;
mod uop;

pub use error::SimError;
pub use instr::{Cond, Instr, Operand2, Reg, Target};
pub use machine::{Flags, Machine, MachineState};
pub use program::{Program, ProgramBuilder, DEFAULT_ORIGIN, SKIP_DUP_ORIGIN};
pub use secbranch_cfi::CfiMonitor;
pub use simulator::{
    ExecResult, FaultAction, FaultHook, NoFaults, RunCursor, SegmentEnd, Simulator,
};
pub use uop::DecodedProgram;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Instr>();
        assert_send_sync::<Program>();
        assert_send_sync::<Machine>();
        assert_send_sync::<Simulator>();
        assert_send_sync::<ExecResult>();
        assert_send_sync::<SimError>();
    }
}
