//! Registers, condition codes and the Thumb-2 instruction subset with its
//! size model.

use std::fmt;

/// Core registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    /// Stack pointer.
    Sp,
    /// Link register.
    Lr,
    /// Program counter (only meaningful as a `POP` destination).
    Pc,
}

impl Reg {
    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::Sp,
        Reg::Lr,
        Reg::Pc,
    ];

    /// The architectural register index (0–15).
    #[must_use]
    pub fn index(self) -> usize {
        Reg::ALL
            .iter()
            .position(|r| *r == self)
            .expect("member of ALL")
    }

    /// `true` for r0–r7 (encodable in most 16-bit Thumb instructions).
    #[must_use]
    pub fn is_low(self) -> bool {
        self.index() < 8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => write!(f, "sp"),
            Reg::Lr => write!(f, "lr"),
            Reg::Pc => write!(f, "pc"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

/// Condition codes for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Unsigned lower (C clear).
    Lo,
    /// Unsigned higher or same (C set).
    Hs,
    /// Unsigned higher (C set and Z clear).
    Hi,
    /// Unsigned lower or same (C clear or Z set).
    Ls,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lo, Cond::Hs, Cond::Hi, Cond::Ls];

    /// The inverse condition.
    #[must_use]
    pub fn inverted(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lo => Cond::Hs,
            Cond::Hs => Cond::Lo,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lo => "lo",
            Cond::Hs => "hs",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
        };
        f.write_str(s)
    }
}

/// The flexible second operand of data-processing instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand2 {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(u32),
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// A branch / call target: a label before assembly, an instruction index
/// afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// Unresolved symbolic target.
    Label(String),
    /// Resolved instruction index.
    Resolved(usize),
}

impl Target {
    /// Convenience constructor from a label name.
    #[must_use]
    pub fn label(name: impl Into<String>) -> Self {
        Target::Label(name.into())
    }

    /// The resolved index, if resolved.
    #[must_use]
    pub fn index(&self) -> Option<usize> {
        match self {
            Target::Resolved(i) => Some(*i),
            Target::Label(_) => None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, "{l}"),
            Target::Resolved(i) => write!(f, "@{i}"),
        }
    }
}

/// The Thumb-2 instruction subset emitted by the secbranch back end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Load a 32-bit immediate into a register (assembled as `MOVS`, `MOVW`
    /// or `MOVW`+`MOVT` depending on the value).
    MovImm {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: u32,
    },
    /// Register move.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rm: Reg,
    },
    /// Addition.
    Add {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Subtraction.
    Sub {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Multiplication (low 32 bits).
    Mul {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// Multiply and subtract: `rd = ra - rn * rm`.
    Mls {
        /// Destination.
        rd: Reg,
        /// Multiplicand.
        rn: Reg,
        /// Multiplier.
        rm: Reg,
        /// Minuend.
        ra: Reg,
    },
    /// Unsigned division (division by zero yields zero).
    Udiv {
        /// Destination.
        rd: Reg,
        /// Dividend.
        rn: Reg,
        /// Divisor.
        rm: Reg,
    },
    /// Bitwise AND.
    And {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Bitwise OR.
    Orr {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Bitwise exclusive OR.
    Eor {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Logical shift left.
    Lsl {
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rn: Reg,
        /// Shift amount.
        op2: Operand2,
    },
    /// Logical shift right.
    Lsr {
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rn: Reg,
        /// Shift amount.
        op2: Operand2,
    },
    /// Arithmetic shift right.
    Asr {
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rn: Reg,
        /// Shift amount.
        op2: Operand2,
    },
    /// Compare (sets NZCV from `rn - op2`).
    Cmp {
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Unconditional branch.
    B {
        /// Branch target.
        target: Target,
    },
    /// Conditional branch.
    BCond {
        /// Condition under which the branch is taken.
        cond: Cond,
        /// Branch target.
        target: Target,
    },
    /// Branch with link (call).
    Bl {
        /// Call target.
        target: Target,
    },
    /// Branch to a register value (function return via `BX LR`).
    Bx {
        /// Register holding the destination.
        rm: Reg,
    },
    /// Word load: `rt = mem32[rn + offset]`.
    Ldr {
        /// Destination.
        rt: Reg,
        /// Base register.
        rn: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Word store: `mem32[rn + offset] = rt`.
    Str {
        /// Source.
        rt: Reg,
        /// Base register.
        rn: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Byte load (zero-extended).
    Ldrb {
        /// Destination.
        rt: Reg,
        /// Base register.
        rn: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Byte store.
    Strb {
        /// Source.
        rt: Reg,
        /// Base register.
        rn: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Push registers onto the stack.
    Push {
        /// Registers to push (stored in register-number order).
        regs: Vec<Reg>,
    },
    /// Pop registers from the stack (popping `PC` returns).
    Pop {
        /// Registers to pop.
        regs: Vec<Reg>,
    },
    /// No operation.
    Nop,
}

impl Instr {
    /// Code size of the instruction in bytes under the simplified Thumb-2
    /// encoding model:
    ///
    /// * 16-bit (2-byte) encodings for the narrow forms: register ALU
    ///   operations on low registers, small immediates (< 256), small
    ///   load/store offsets, compare, unconditional/conditional branches,
    ///   push/pop of low registers (+ LR/PC), `BX`, `NOP`;
    /// * 32-bit (4-byte) encodings otherwise (`MOVW`, `MLS`, `UDIV`, wide
    ///   immediates, wide offsets, high registers);
    /// * `MovImm` of a value above 16 bits needs a `MOVW`+`MOVT` pair
    ///   (8 bytes).
    ///
    /// This mirrors the arithmetic behind the paper's Table II (e.g. the
    /// `ADD + SUB + UDIV + MLS` encoded compare occupies 2+2+4+4 = 12 bytes).
    #[must_use]
    pub fn size_bytes(&self) -> u32 {
        match self {
            Instr::MovImm { imm, .. } => {
                if *imm < 256 {
                    2
                } else if *imm <= 0xFFFF {
                    4
                } else {
                    8
                }
            }
            Instr::Mov { .. } => 2,
            Instr::Add { rd, rn, op2 } | Instr::Sub { rd, rn, op2 } => {
                narrow_alu_size(*rd, *rn, *op2)
            }
            Instr::And { rd, rn, op2 }
            | Instr::Orr { rd, rn, op2 }
            | Instr::Eor { rd, rn, op2 } => match op2 {
                Operand2::Reg(rm) if rd.is_low() && rn.is_low() && rm.is_low() && rd == rn => 2,
                _ => 4,
            },
            Instr::Lsl { rd, rn, op2 }
            | Instr::Lsr { rd, rn, op2 }
            | Instr::Asr { rd, rn, op2 } => match op2 {
                Operand2::Imm(i) if rd.is_low() && rn.is_low() && *i < 32 => 2,
                Operand2::Reg(_) if rd.is_low() && rn.is_low() && rd == rn => 2,
                _ => 4,
            },
            Instr::Mul { rd, rn, rm } => {
                if rd.is_low() && rn.is_low() && rm.is_low() && (rd == rn || rd == rm) {
                    2
                } else {
                    4
                }
            }
            Instr::Mls { .. } | Instr::Udiv { .. } => 4,
            Instr::Cmp { rn, op2 } => match op2 {
                Operand2::Reg(rm) if rn.is_low() && rm.is_low() => 2,
                Operand2::Imm(i) if rn.is_low() && *i < 256 => 2,
                _ => 4,
            },
            Instr::B { .. } | Instr::BCond { .. } => 2,
            Instr::Bl { .. } => 4,
            Instr::Bx { .. } => 2,
            Instr::Ldr { rt, rn, offset } | Instr::Str { rt, rn, offset } => {
                if rt.is_low()
                    && (rn.is_low() || *rn == Reg::Sp)
                    && *offset >= 0
                    && *offset < 128
                    && offset % 4 == 0
                {
                    2
                } else {
                    4
                }
            }
            Instr::Ldrb { rt, rn, offset } | Instr::Strb { rt, rn, offset } => {
                if rt.is_low() && rn.is_low() && *offset >= 0 && *offset < 32 {
                    2
                } else {
                    4
                }
            }
            Instr::Push { regs } | Instr::Pop { regs } => {
                if regs
                    .iter()
                    .all(|r| r.is_low() || *r == Reg::Lr || *r == Reg::Pc)
                {
                    2
                } else {
                    4
                }
            }
            Instr::Nop => 2,
        }
    }

    /// `true` when executing the instruction twice in a row from the same
    /// machine state is indistinguishable from executing it once — the
    /// property that makes per-instruction duplication a sound hardening
    /// against single instruction-skip faults (skip either copy and the
    /// other still performs the work).
    ///
    /// The rules are purely structural:
    ///
    /// * moves, compares, branches and stores are idempotent (a taken branch
    ///   leaves its duplicate unexecuted; an untaken one re-evaluates the
    ///   same flags);
    /// * loads are idempotent unless they overwrite their own base register;
    /// * ALU operations are idempotent unless the destination is also a
    ///   source (e.g. `add r0, r0, #1` counts up on every execution);
    /// * calls and stack pushes/pops move `SP`/`LR` state and are never
    ///   idempotent.
    ///
    /// Caveat: a store to a memory-mapped device register with
    /// accumulating semantics (the CFI unit's UPDATE register) is *not*
    /// semantically idempotent even though `STR` is structurally — callers
    /// duplicating code must keep such stores out of duplicated regions
    /// (the back end does: CFI edge stubs are emitted outside any hardened
    /// region).
    #[must_use]
    pub fn is_idempotent(&self) -> bool {
        match self {
            Instr::MovImm { .. }
            | Instr::Mov { .. }
            | Instr::Cmp { .. }
            | Instr::B { .. }
            | Instr::BCond { .. }
            | Instr::Bx { .. }
            | Instr::Str { .. }
            | Instr::Strb { .. }
            | Instr::Nop => true,
            Instr::Ldr { rt, rn, .. } | Instr::Ldrb { rt, rn, .. } => rt != rn,
            Instr::Add { rd, rn, op2 }
            | Instr::Sub { rd, rn, op2 }
            | Instr::And { rd, rn, op2 }
            | Instr::Orr { rd, rn, op2 }
            | Instr::Eor { rd, rn, op2 }
            | Instr::Lsl { rd, rn, op2 }
            | Instr::Lsr { rd, rn, op2 }
            | Instr::Asr { rd, rn, op2 } => {
                rd != rn && !matches!(op2, Operand2::Reg(rm) if rm == rd)
            }
            Instr::Mul { rd, rn, rm } | Instr::Udiv { rd, rn, rm } => rd != rn && rd != rm,
            Instr::Mls { rd, rn, rm, ra } => rd != rn && rd != rm && rd != ra,
            Instr::Bl { .. } | Instr::Push { .. } | Instr::Pop { .. } => false,
        }
    }

    /// The branch/call target of control-transfer instructions.
    #[must_use]
    pub fn target(&self) -> Option<&Target> {
        match self {
            Instr::B { target } | Instr::BCond { target, .. } | Instr::Bl { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Mutable access to the branch/call target (used by the assembler to
    /// resolve labels).
    #[must_use]
    pub fn target_mut(&mut self) -> Option<&mut Target> {
        match self {
            Instr::B { target } | Instr::BCond { target, .. } | Instr::Bl { target } => {
                Some(target)
            }
            _ => None,
        }
    }
}

fn narrow_alu_size(rd: Reg, rn: Reg, op2: Operand2) -> u32 {
    match op2 {
        Operand2::Reg(rm) => {
            if (rd.is_low() && rn.is_low() && rm.is_low()) || rd == rn {
                2
            } else {
                4
            }
        }
        Operand2::Imm(i) => {
            let narrow = (rd.is_low() && rn.is_low() && (i < 8 || (rd == rn && i < 256)))
                || (rd == Reg::Sp && rn == Reg::Sp && i < 512);
            if narrow {
                2
            } else {
                4
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovImm { rd, imm } => write!(f, "mov {rd}, #{imm}"),
            Instr::Mov { rd, rm } => write!(f, "mov {rd}, {rm}"),
            Instr::Add { rd, rn, op2 } => write!(f, "add {rd}, {rn}, {op2}"),
            Instr::Sub { rd, rn, op2 } => write!(f, "sub {rd}, {rn}, {op2}"),
            Instr::Mul { rd, rn, rm } => write!(f, "mul {rd}, {rn}, {rm}"),
            Instr::Mls { rd, rn, rm, ra } => write!(f, "mls {rd}, {rn}, {rm}, {ra}"),
            Instr::Udiv { rd, rn, rm } => write!(f, "udiv {rd}, {rn}, {rm}"),
            Instr::And { rd, rn, op2 } => write!(f, "and {rd}, {rn}, {op2}"),
            Instr::Orr { rd, rn, op2 } => write!(f, "orr {rd}, {rn}, {op2}"),
            Instr::Eor { rd, rn, op2 } => write!(f, "eor {rd}, {rn}, {op2}"),
            Instr::Lsl { rd, rn, op2 } => write!(f, "lsl {rd}, {rn}, {op2}"),
            Instr::Lsr { rd, rn, op2 } => write!(f, "lsr {rd}, {rn}, {op2}"),
            Instr::Asr { rd, rn, op2 } => write!(f, "asr {rd}, {rn}, {op2}"),
            Instr::Cmp { rn, op2 } => write!(f, "cmp {rn}, {op2}"),
            Instr::B { target } => write!(f, "b {target}"),
            Instr::BCond { cond, target } => write!(f, "b{cond} {target}"),
            Instr::Bl { target } => write!(f, "bl {target}"),
            Instr::Bx { rm } => write!(f, "bx {rm}"),
            Instr::Ldr { rt, rn, offset } => write!(f, "ldr {rt}, [{rn}, #{offset}]"),
            Instr::Str { rt, rn, offset } => write!(f, "str {rt}, [{rn}, #{offset}]"),
            Instr::Ldrb { rt, rn, offset } => write!(f, "ldrb {rt}, [{rn}, #{offset}]"),
            Instr::Strb { rt, rn, offset } => write!(f, "strb {rt}, [{rn}, #{offset}]"),
            Instr::Push { regs } => write!(f, "push {{{}}}", reg_list(regs)),
            Instr::Pop { regs } => write!(f, "pop {{{}}}", reg_list(regs)),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

fn reg_list(regs: &[Reg]) -> String {
    regs.iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_and_classes() {
        assert_eq!(Reg::R0.index(), 0);
        assert_eq!(Reg::Sp.index(), 13);
        assert_eq!(Reg::Lr.index(), 14);
        assert_eq!(Reg::Pc.index(), 15);
        assert!(Reg::R7.is_low());
        assert!(!Reg::R8.is_low());
        assert_eq!(format!("{} {} {}", Reg::R3, Reg::Sp, Reg::Pc), "r3 sp pc");
    }

    #[test]
    fn condition_inversion_is_an_involution() {
        for c in Cond::ALL {
            assert_eq!(c.inverted().inverted(), c);
        }
    }

    #[test]
    fn encoded_compare_building_block_is_twelve_bytes() {
        // Table II: ADD + SUB + UDIV + MLS = 12 bytes.
        let seq = [
            Instr::Sub {
                rd: Reg::R2,
                rn: Reg::R0,
                op2: Operand2::Reg(Reg::R1),
            },
            Instr::Add {
                rd: Reg::R2,
                rn: Reg::R2,
                op2: Operand2::Reg(Reg::R3),
            },
            Instr::Udiv {
                rd: Reg::R4,
                rn: Reg::R2,
                rm: Reg::R5,
            },
            Instr::Mls {
                rd: Reg::R0,
                rn: Reg::R4,
                rm: Reg::R5,
                ra: Reg::R2,
            },
        ];
        let total: u32 = seq.iter().map(Instr::size_bytes).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn size_model_distinguishes_narrow_and_wide_forms() {
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 5
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 300
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::MovImm {
                rd: Reg::R0,
                imm: 0x1234_5678
            }
            .size_bytes(),
            8
        );
        assert_eq!(
            Instr::Add {
                rd: Reg::R0,
                rn: Reg::R0,
                op2: Operand2::Imm(100)
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Instr::Add {
                rd: Reg::R8,
                rn: Reg::R1,
                op2: Operand2::Imm(100)
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::Ldr {
                rt: Reg::R0,
                rn: Reg::Sp,
                offset: 8
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Instr::Ldr {
                rt: Reg::R0,
                rn: Reg::R1,
                offset: 260
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::Push {
                regs: vec![Reg::R4, Reg::Lr]
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Instr::Push {
                regs: vec![Reg::R8, Reg::Lr]
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::Bl {
                target: Target::label("f")
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Instr::B {
                target: Target::label("f")
            }
            .size_bytes(),
            2
        );
    }

    #[test]
    fn targets_are_accessible_and_mutable() {
        let mut i = Instr::BCond {
            cond: Cond::Eq,
            target: Target::label("then"),
        };
        assert_eq!(i.target(), Some(&Target::label("then")));
        *i.target_mut().expect("has target") = Target::Resolved(42);
        assert_eq!(i.target().and_then(Target::index), Some(42));
        assert_eq!(Instr::Nop.target(), None);
    }

    #[test]
    fn idempotency_is_structural() {
        // Destination disjoint from sources: safe to re-execute.
        assert!(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1)
        }
        .is_idempotent());
        // Destination is a source: each execution accumulates.
        assert!(!Instr::Add {
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Imm(1)
        }
        .is_idempotent());
        assert!(!Instr::Sub {
            rd: Reg::Sp,
            rn: Reg::Sp,
            op2: Operand2::Imm(16)
        }
        .is_idempotent());
        assert!(!Instr::Eor {
            rd: Reg::R2,
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R2)
        }
        .is_idempotent());
        assert!(!Instr::Mls {
            rd: Reg::R2,
            rn: Reg::R3,
            rm: Reg::R1,
            ra: Reg::R2
        }
        .is_idempotent());
        // Loads are safe unless they clobber their own base.
        assert!(Instr::Ldr {
            rt: Reg::R0,
            rn: Reg::Sp,
            offset: 8
        }
        .is_idempotent());
        assert!(!Instr::Ldr {
            rt: Reg::R3,
            rn: Reg::R3,
            offset: 0
        }
        .is_idempotent());
        // Stores, moves, compares and branches re-execute harmlessly.
        assert!(Instr::Str {
            rt: Reg::R0,
            rn: Reg::Sp,
            offset: 8
        }
        .is_idempotent());
        assert!(Instr::MovImm {
            rd: Reg::R2,
            imm: 0
        }
        .is_idempotent());
        assert!(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Imm(0)
        }
        .is_idempotent());
        assert!(Instr::B {
            target: Target::label("x")
        }
        .is_idempotent());
        assert!(Instr::Bx { rm: Reg::Lr }.is_idempotent());
        // Calls and stack operations move SP/LR state.
        assert!(!Instr::Bl {
            target: Target::label("f")
        }
        .is_idempotent());
        assert!(!Instr::Push {
            regs: vec![Reg::Lr]
        }
        .is_idempotent());
        assert!(!Instr::Pop {
            regs: vec![Reg::Pc]
        }
        .is_idempotent());
    }

    #[test]
    fn display_produces_assembly_like_text() {
        let i = Instr::Mls {
            rd: Reg::R0,
            rn: Reg::R1,
            rm: Reg::R2,
            ra: Reg::R3,
        };
        assert_eq!(i.to_string(), "mls r0, r1, r2, r3");
        let i = Instr::Ldr {
            rt: Reg::R0,
            rn: Reg::Sp,
            offset: 4,
        };
        assert_eq!(i.to_string(), "ldr r0, [sp, #4]");
        let i = Instr::Push {
            regs: vec![Reg::R4, Reg::R5, Reg::Lr],
        };
        assert_eq!(i.to_string(), "push {r4, r5, lr}");
        let i = Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("loop"),
        };
        assert_eq!(i.to_string(), "blo loop");
    }
}
