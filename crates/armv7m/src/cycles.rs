//! The cycle model.
//!
//! The model follows the Cortex-M3/M4 timing facts the paper's cost analysis
//! relies on:
//!
//! * data-processing instructions, `MOV` and `CMP`: 1 cycle,
//! * `MUL`: 1 cycle, `MLS`: 2 cycles,
//! * `UDIV`: 2–12 cycles depending on the operand values (the hardware
//!   terminates early based on the number of significant quotient bits),
//! * loads and stores: 2 cycles,
//! * taken branches: 2 cycles (pipeline refill), not-taken conditional
//!   branches: 1 cycle, `BL`/`BX`: 3 cycles,
//! * `PUSH`/`POP`: 1 + number of registers (+2 extra when `POP` writes the
//!   program counter).
//!
//! With these values the paper's Table II ranges are reproduced exactly: the
//! ordering-class encoded compare (`SUB`, `ADD`, `UDIV`, `MLS`) costs
//! 1 + 1 + (2..=12) + 2 = 6..=16 cycles.

use crate::instr::{Instr, Reg};

/// Cycles consumed by a `UDIV` with the given operand values.
///
/// Model: 2 base cycles plus one cycle per 3 significant quotient bits,
/// clamped to the architectural 2–12 range. Division by zero takes the
/// minimum (the hardware raises a configurable fault or returns zero; the
/// simulator returns zero).
#[must_use]
pub fn udiv_cycles(dividend: u32, divisor: u32) -> u64 {
    if divisor == 0 {
        return 2;
    }
    let quotient = dividend / divisor;
    let significant = 32 - quotient.leading_zeros();
    (2 + u64::from(significant) / 3).clamp(2, 12)
}

/// The minimum and maximum cycle count a `UDIV` can take.
pub const UDIV_CYCLES_RANGE: (u64, u64) = (2, 12);

/// Cycles consumed by an instruction.
///
/// `branch_taken` reports whether a conditional branch was taken;
/// `udiv_operands` carries the operand values of a `UDIV` (cycle count is
/// data dependent).
#[must_use]
pub fn instruction_cycles(
    instr: &Instr,
    branch_taken: bool,
    udiv_operands: Option<(u32, u32)>,
) -> u64 {
    match instr {
        Instr::MovImm { imm, .. } => {
            if *imm > 0xFFFF {
                2 // MOVW + MOVT pair
            } else {
                1
            }
        }
        Instr::Mov { .. }
        | Instr::Add { .. }
        | Instr::Sub { .. }
        | Instr::And { .. }
        | Instr::Orr { .. }
        | Instr::Eor { .. }
        | Instr::Lsl { .. }
        | Instr::Lsr { .. }
        | Instr::Asr { .. }
        | Instr::Cmp { .. }
        | Instr::Nop => 1,
        Instr::Mul { .. } => 1,
        Instr::Mls { .. } => 2,
        Instr::Udiv { .. } => match udiv_operands {
            Some((n, d)) => udiv_cycles(n, d),
            None => UDIV_CYCLES_RANGE.1,
        },
        Instr::B { .. } => 2,
        Instr::BCond { .. } => {
            if branch_taken {
                2
            } else {
                1
            }
        }
        Instr::Bl { .. } | Instr::Bx { .. } => 3,
        Instr::Ldr { .. } | Instr::Str { .. } | Instr::Ldrb { .. } | Instr::Strb { .. } => 2,
        Instr::Push { regs } => 1 + regs.len() as u64,
        Instr::Pop { regs } => {
            let base = 1 + regs.len() as u64;
            if regs.contains(&Reg::Pc) {
                base + 2
            } else {
                base
            }
        }
    }
}

/// Static lower and upper bounds on the cycles of an instruction, independent
/// of operand values (used for the qualitative Table II analysis).
#[must_use]
pub fn instruction_cycle_bounds(instr: &Instr) -> (u64, u64) {
    match instr {
        Instr::Udiv { .. } => UDIV_CYCLES_RANGE,
        Instr::BCond { .. } => (1, 2),
        other => {
            let c = instruction_cycles(other, true, None);
            (c, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Operand2, Target};

    #[test]
    fn udiv_cycles_are_data_dependent_and_bounded() {
        assert_eq!(udiv_cycles(0, 5), 2);
        assert_eq!(udiv_cycles(7, 3), 2);
        assert!(udiv_cycles(1 << 20, 3) > udiv_cycles(1 << 4, 3));
        assert_eq!(udiv_cycles(u32::MAX, 1), 12);
        assert_eq!(udiv_cycles(123, 0), 2);
        for (n, d) in [(0u32, 1u32), (5, 5), (1 << 31, 1), (999_999, 7)] {
            let c = udiv_cycles(n, d);
            assert!((2..=12).contains(&c));
        }
    }

    #[test]
    fn encoded_compare_cycle_range_matches_table_two() {
        // SUB + ADD + UDIV + MLS = 6 .. 16 cycles.
        let seq = [
            Instr::Sub {
                rd: Reg::R2,
                rn: Reg::R0,
                op2: Operand2::Reg(Reg::R1),
            },
            Instr::Add {
                rd: Reg::R2,
                rn: Reg::R2,
                op2: Operand2::Reg(Reg::R3),
            },
            Instr::Udiv {
                rd: Reg::R4,
                rn: Reg::R2,
                rm: Reg::R5,
            },
            Instr::Mls {
                rd: Reg::R0,
                rn: Reg::R4,
                rm: Reg::R5,
                ra: Reg::R2,
            },
        ];
        let min: u64 = seq.iter().map(|i| instruction_cycle_bounds(i).0).sum();
        let max: u64 = seq.iter().map(|i| instruction_cycle_bounds(i).1).sum();
        assert_eq!((min, max), (6, 16));
    }

    #[test]
    fn branch_cycles_depend_on_direction() {
        let b = Instr::BCond {
            cond: crate::instr::Cond::Eq,
            target: Target::Resolved(0),
        };
        assert_eq!(instruction_cycles(&b, true, None), 2);
        assert_eq!(instruction_cycles(&b, false, None), 1);
        assert_eq!(instruction_cycle_bounds(&b), (1, 2));
    }

    #[test]
    fn pop_of_pc_costs_a_pipeline_refill() {
        let pop = Instr::Pop {
            regs: vec![Reg::R4, Reg::Pc],
        };
        assert_eq!(instruction_cycles(&pop, false, None), 5);
        let pop = Instr::Pop {
            regs: vec![Reg::R4, Reg::R5],
        };
        assert_eq!(instruction_cycles(&pop, false, None), 3);
    }

    #[test]
    fn wide_immediate_moves_cost_two_cycles() {
        let narrow = Instr::MovImm {
            rd: Reg::R0,
            imm: 10,
        };
        let wide = Instr::MovImm {
            rd: Reg::R0,
            imm: 0xDEAD_BEEF,
        };
        assert_eq!(instruction_cycles(&narrow, false, None), 1);
        assert_eq!(instruction_cycles(&wide, false, None), 2);
    }
}
