//! Program construction and assembly (label resolution, size accounting,
//! per-instruction provenance).

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::error::SimError;
use crate::instr::{Instr, Target};
use crate::uop::DecodedProgram;

/// The provenance tag of an instruction whose origin was never declared
/// (see [`ProgramBuilder::set_origin`]).
pub const DEFAULT_ORIGIN: &str = "isel";

/// The provenance tag stamped on the second copy of an instruction emitted
/// by the builder's skip-hardening mode
/// ([`ProgramBuilder::set_duplicate_idempotent`]).
pub const SKIP_DUP_ORIGIN: &str = "skip-dup";

/// An assembled program: instructions with resolved branch targets plus the
/// label map, the code-size accounting derived from the Thumb-2 size model,
/// and a provenance tag per instruction.
///
/// The label map is an ordered [`BTreeMap`], so every way of walking a
/// program — instructions, labels, listings — is deterministic; two
/// assemblies of the same builder contents are byte-identical, which is what
/// lets artifact listings serve as golden test fixtures.
#[derive(Debug)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    sizes: Vec<u32>,
    label_of_instr: Vec<Option<String>>,
    origin_of_instr: Vec<&'static str>,
    /// The lazily decoded micro-op form ([`Program::decoded`]). Derived
    /// data: excluded from [`Clone`] and equality, never serialised, never
    /// part of an artifact fingerprint.
    decoded: OnceLock<DecodedProgram>,
}

impl Clone for Program {
    fn clone(&self) -> Self {
        // The decode cache is intentionally not cloned: a clone re-decodes
        // lazily if (and only if) it is ever executed. Programs are shared
        // via `Arc` on every hot path, so clones are cold-path copies.
        Program {
            instrs: self.instrs.clone(),
            labels: self.labels.clone(),
            sizes: self.sizes.clone(),
            label_of_instr: self.label_of_instr.clone(),
            origin_of_instr: self.origin_of_instr.clone(),
            decoded: OnceLock::new(),
        }
    }
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        // Equality is over the assembled content only — whether a decode
        // cache happens to be populated is an execution-history artifact.
        self.instrs == other.instrs
            && self.labels == other.labels
            && self.sizes == other.sizes
            && self.label_of_instr == other.label_of_instr
            && self.origin_of_instr == other.origin_of_instr
    }
}

impl Eq for Program {}

impl Program {
    /// The instructions of the program.
    #[must_use]
    pub fn instructions(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction index a label points at.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels and their instruction indices, in lexicographic label
    /// order (a [`BTreeMap`], so iteration is deterministic).
    #[must_use]
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// Total code size in bytes (sum of the per-instruction Thumb-2 sizes).
    #[must_use]
    pub fn code_size_bytes(&self) -> u32 {
        self.sizes.iter().sum()
    }

    /// Code size of the instruction range `[start, end)` in bytes. Used to
    /// report per-function and per-snippet sizes (Tables II and III).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn code_size_of_range(&self, start: usize, end: usize) -> u32 {
        self.sizes[start..end].iter().sum()
    }

    /// Code size in bytes of the function starting at `label` and extending
    /// to the next label (or the end of the program).
    #[must_use]
    pub fn code_size_of_function(&self, label: &str) -> Option<u32> {
        let start = self.label(label)?;
        let end = self
            .labels
            .values()
            .copied()
            .filter(|&i| i > start)
            .min()
            .unwrap_or(self.instrs.len());
        Some(self.code_size_of_range(start, end))
    }

    /// The label placed exactly at instruction `index`, if any.
    #[must_use]
    pub fn label_at(&self, index: usize) -> Option<&str> {
        self.label_of_instr.get(index).and_then(|l| l.as_deref())
    }

    /// The provenance tag of the instruction at `index`: the origin the
    /// builder had declared when the instruction was pushed
    /// ([`DEFAULT_ORIGIN`] if none was, or the index is out of range).
    #[must_use]
    pub fn origin_at(&self, index: usize) -> &'static str {
        self.origin_of_instr
            .get(index)
            .copied()
            .unwrap_or(DEFAULT_ORIGIN)
    }

    /// The pre-decoded micro-op form of the program, decoded on first use
    /// and cached for the lifetime of the program (thread-safe — concurrent
    /// campaign workers sharing one `Arc<Program>` decode at most once).
    ///
    /// The decoded form is derived data: it never leaves the process, is
    /// never hashed into fingerprints, and does not participate in program
    /// equality or cloning.
    #[must_use]
    pub fn decoded(&self) -> &DecodedProgram {
        self.decoded.get_or_init(|| DecodedProgram::decode(self))
    }

    /// Decode-cost accounting: `(micro-ops, decode microseconds)` if this
    /// program has been decoded, `None` if the cache is still empty.
    /// Campaign statistics aggregate this over a matrix's artifacts.
    #[must_use]
    pub fn decode_stats(&self) -> Option<(u64, u64)> {
        self.decoded
            .get()
            .map(|d| (d.len() as u64, d.decode_micros()))
    }

    /// A plain-text listing of the program (label lines plus one instruction
    /// per line) for debugging and golden tests.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Some(label) = self.label_at(i) {
                out.push_str(label);
                out.push_str(":\n");
            }
            out.push_str(&format!("  {:4}  {}\n", i, instr));
        }
        out
    }

    /// An annotated, byte-stable listing: per instruction the index, the
    /// byte offset in the Thumb-2 size model, the rendered instruction and
    /// its provenance tag, with label lines interleaved.
    ///
    /// Because every ingredient is deterministic (instructions and label
    /// attachment come from the builder in push order, offsets from the size
    /// model, origins from [`ProgramBuilder::set_origin`]), two builds of
    /// the same program render the identical string — the property golden
    /// snapshot tests and cross-session artifact comparisons rely on.
    #[must_use]
    pub fn annotated_listing(&self) -> String {
        let mut out = String::new();
        let mut offset = 0u32;
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Some(label) = self.label_at(i) {
                out.push_str(label);
                out.push_str(":\n");
            }
            out.push_str(&format!(
                "  {:4}  {:#06x}  {:<24}; {}\n",
                i,
                offset,
                instr.to_string(),
                self.origin_at(i),
            ));
            offset += self.sizes[i];
        }
        out
    }
}

/// Builder collecting labels and instructions before assembly.
///
/// The builder carries a *current origin* tag ([`ProgramBuilder::set_origin`],
/// initially [`DEFAULT_ORIGIN`]); every pushed instruction is stamped with
/// it, and the tags survive assembly as [`Program::origin_at`]. The back end
/// uses this to attribute each machine instruction to the pipeline layer
/// that required it (plain instruction selection, the AN Coder's encoded
/// comparison, CFI instrumentation, …).
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    items: Vec<Item>,
    origin: &'static str,
    duplicate: bool,
}

#[derive(Debug, Clone)]
enum Item {
    Label(String),
    Instr(Instr, &'static str),
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        ProgramBuilder {
            items: Vec::new(),
            origin: DEFAULT_ORIGIN,
            duplicate: false,
        }
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) {
        self.items.push(Item::Label(name.into()));
    }

    /// Declares the provenance tag stamped on subsequently pushed
    /// instructions (until the next call). Tags are `'static` strings by
    /// design: they name fixed pipeline layers, not per-build data.
    pub fn set_origin(&mut self, origin: &'static str) {
        self.origin = origin;
    }

    /// The currently declared provenance tag.
    #[must_use]
    pub fn origin(&self) -> &'static str {
        self.origin
    }

    /// Enables or disables skip-hardening duplication: while enabled, every
    /// pushed instruction for which [`Instr::is_idempotent`] holds is
    /// emitted *twice* (the duplicate stamped [`SKIP_DUP_ORIGIN`]), so a
    /// single instruction-skip fault on either copy is masked by the other.
    /// Non-idempotent instructions (calls, push/pop, accumulating ALU ops)
    /// are emitted once as usual. Labels are unaffected — they still
    /// resolve to the first copy.
    pub fn set_duplicate_idempotent(&mut self, enabled: bool) {
        self.duplicate = enabled;
    }

    /// Whether skip-hardening duplication is currently enabled.
    #[must_use]
    pub fn duplicate_idempotent(&self) -> bool {
        self.duplicate
    }

    /// Appends an instruction (stamped with the current origin). Under
    /// [`ProgramBuilder::set_duplicate_idempotent`], idempotent
    /// instructions are appended twice.
    pub fn push(&mut self, instr: Instr) {
        if self.duplicate && instr.is_idempotent() {
            self.items.push(Item::Instr(instr.clone(), self.origin));
            self.items.push(Item::Instr(instr, SKIP_DUP_ORIGIN));
        } else {
            self.items.push(Item::Instr(instr, self.origin));
        }
    }

    /// Appends all instructions of an iterator (each stamped with the
    /// current origin).
    pub fn extend(&mut self, instrs: impl IntoIterator<Item = Instr>) {
        for i in instrs {
            self.push(i);
        }
    }

    /// Number of instructions appended so far.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Instr(..)))
            .count()
    }

    /// Resolves labels and produces an executable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateLabel`] or [`SimError::UndefinedLabel`].
    pub fn assemble(self) -> Result<Program, SimError> {
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        let mut instrs: Vec<Instr> = Vec::new();
        let mut label_of_instr: Vec<Option<String>> = Vec::new();
        let mut origin_of_instr: Vec<&'static str> = Vec::new();
        let mut pending_labels: Vec<String> = Vec::new();
        for item in self.items {
            match item {
                Item::Label(name) => {
                    if labels.contains_key(&name) {
                        return Err(SimError::DuplicateLabel { label: name });
                    }
                    labels.insert(name.clone(), instrs.len());
                    pending_labels.push(name);
                }
                Item::Instr(i, origin) => {
                    instrs.push(i);
                    label_of_instr.push(pending_labels.first().cloned());
                    origin_of_instr.push(origin);
                    pending_labels.clear();
                }
            }
        }
        // Labels at the very end of the program point one past the last
        // instruction; that is allowed (e.g. an `end` marker) but they cannot
        // be attached to an instruction.

        for instr in &mut instrs {
            if let Some(target) = instr.target_mut() {
                if let Target::Label(name) = target {
                    let Some(&index) = labels.get(name.as_str()) else {
                        return Err(SimError::UndefinedLabel {
                            label: name.clone(),
                        });
                    };
                    *target = Target::Resolved(index);
                }
            }
        }

        let sizes = instrs.iter().map(Instr::size_bytes).collect();
        Ok(Program {
            instrs,
            labels,
            sizes,
            label_of_instr,
            origin_of_instr,
            decoded: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Operand2, Reg};

    fn sample_builder() -> ProgramBuilder {
        let mut p = ProgramBuilder::new();
        p.label("start");
        p.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 0,
        });
        p.label("loop");
        p.push(Instr::Add {
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Imm(10),
        });
        p.push(Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("loop"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        p
    }

    #[test]
    fn assembly_resolves_labels() {
        let program = sample_builder().assemble().expect("assembles");
        assert_eq!(program.len(), 5);
        assert_eq!(program.label("start"), Some(0));
        assert_eq!(program.label("loop"), Some(1));
        assert_eq!(program.label("missing"), None);
        let branch = &program.instructions()[3];
        assert_eq!(branch.target().and_then(Target::index), Some(1));
        assert_eq!(program.label_at(0), Some("start"));
        assert_eq!(program.label_at(1), Some("loop"));
        assert_eq!(program.label_at(2), None);
    }

    #[test]
    fn code_size_accounting() {
        let program = sample_builder().assemble().expect("assembles");
        // mov#0 (2) + add#1 (2) + cmp#10 (2) + blo (2) + bx (2) = 10 bytes.
        assert_eq!(program.code_size_bytes(), 10);
        assert_eq!(program.code_size_of_range(0, 1), 2);
        assert_eq!(
            program.code_size_of_function("start"),
            Some(2),
            "'start' extends to the next label 'loop'"
        );
        assert_eq!(program.code_size_of_function("loop"), Some(8));
    }

    #[test]
    fn duplicate_and_undefined_labels_are_rejected() {
        let mut p = ProgramBuilder::new();
        p.label("x");
        p.push(Instr::Nop);
        p.label("x");
        assert!(matches!(p.assemble(), Err(SimError::DuplicateLabel { .. })));

        let mut p = ProgramBuilder::new();
        p.push(Instr::B {
            target: Target::label("nowhere"),
        });
        assert!(matches!(p.assemble(), Err(SimError::UndefinedLabel { .. })));
    }

    #[test]
    fn listing_contains_labels_and_instructions() {
        let program = sample_builder().assemble().expect("assembles");
        let listing = program.listing();
        assert!(listing.contains("start:"));
        assert!(listing.contains("loop:"));
        assert!(listing.contains("blo"));
    }

    #[test]
    fn origins_are_stamped_and_survive_assembly() {
        let mut p = ProgramBuilder::new();
        p.label("f");
        p.push(Instr::Nop); // default origin
        p.set_origin("cfi");
        p.push(Instr::Nop);
        p.push(Instr::Nop);
        p.set_origin("body");
        p.push(Instr::Bx { rm: Reg::Lr });
        assert_eq!(p.origin(), "body");
        let program = p.assemble().expect("assembles");
        assert_eq!(program.origin_at(0), DEFAULT_ORIGIN);
        assert_eq!(program.origin_at(1), "cfi");
        assert_eq!(program.origin_at(2), "cfi");
        assert_eq!(program.origin_at(3), "body");
        assert_eq!(program.origin_at(99), DEFAULT_ORIGIN, "out of range");
    }

    #[test]
    fn annotated_listing_shows_offsets_labels_and_origins() {
        let mut p = sample_builder();
        p.set_origin("tail");
        p.push(Instr::Nop);
        let program = p.assemble().expect("assembles");
        let listing = program.annotated_listing();
        assert!(listing.contains("start:"));
        assert!(listing.contains("loop:"));
        assert!(listing.contains("; isel"));
        assert!(listing.contains("; tail"));
        // Byte offsets follow the size model: instruction 1 starts at 0x2.
        assert!(listing.contains("0x0002"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(listing, program.annotated_listing());
    }

    #[test]
    fn empty_program_is_valid() {
        let program = ProgramBuilder::new().assemble().expect("assembles");
        assert!(program.is_empty());
        assert_eq!(program.code_size_bytes(), 0);
    }

    #[test]
    fn extend_appends_instructions() {
        let mut p = ProgramBuilder::new();
        p.extend([Instr::Nop, Instr::Nop, Instr::Bx { rm: Reg::Lr }]);
        assert_eq!(p.instr_count(), 3);
    }

    #[test]
    fn duplicate_mode_doubles_idempotent_instructions_only() {
        let mut p = ProgramBuilder::new();
        p.label("f");
        p.set_duplicate_idempotent(true);
        assert!(p.duplicate_idempotent());
        p.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 7,
        }); // idempotent: duplicated
        p.push(Instr::Add {
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Imm(1),
        }); // accumulating: single
        p.set_duplicate_idempotent(false);
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 9,
        }); // mode off: single
        p.push(Instr::Bx { rm: Reg::Lr });
        let program = p.assemble().expect("assembles");
        assert_eq!(program.len(), 5);
        // The label still resolves to the first copy.
        assert_eq!(program.label("f"), Some(0));
        assert_eq!(
            program.instructions()[0],
            Instr::MovImm {
                rd: Reg::R0,
                imm: 7
            }
        );
        assert_eq!(program.instructions()[0], program.instructions()[1]);
        // The duplicate carries the dedicated provenance tag; the original
        // keeps the builder's declared origin.
        assert_eq!(program.origin_at(0), DEFAULT_ORIGIN);
        assert_eq!(program.origin_at(1), SKIP_DUP_ORIGIN);
        assert_eq!(program.origin_at(2), DEFAULT_ORIGIN);
        assert_eq!(
            program.instructions()[2],
            Instr::Add {
                rd: Reg::R0,
                rn: Reg::R0,
                op2: Operand2::Imm(1)
            }
        );
    }
}
