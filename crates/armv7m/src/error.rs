//! Error type of the ARMv7-M simulator crate.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling or executing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A branch or call targets a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// A label was defined more than once.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// Execution started from a label that does not exist.
    UnknownEntryPoint {
        /// The requested entry label.
        label: String,
    },
    /// A memory access fell outside the guest memory (and outside the MMIO
    /// window).
    MemoryFault {
        /// The faulting byte address.
        address: u32,
        /// Access size in bytes.
        size: u32,
        /// `true` for stores, `false` for loads.
        is_store: bool,
    },
    /// The program counter left the program (e.g. a corrupted return
    /// address).
    PcOutOfRange {
        /// The faulting instruction index.
        pc: u64,
    },
    /// The step limit was exceeded before the program halted.
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// An instruction still contained an unresolved label at execution time.
    UnresolvedTarget,
    /// A call passed more arguments than fit the r0–r3 calling convention.
    TooManyArguments {
        /// Number of arguments passed.
        count: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UndefinedLabel { label } => write!(f, "undefined label '{label}'"),
            SimError::DuplicateLabel { label } => write!(f, "duplicate label '{label}'"),
            SimError::UnknownEntryPoint { label } => {
                write!(f, "unknown entry point '{label}'")
            }
            SimError::MemoryFault {
                address,
                size,
                is_store,
            } => write!(
                f,
                "{} of {size} bytes at {address:#010x} is out of bounds",
                if *is_store { "store" } else { "load" }
            ),
            SimError::PcOutOfRange { pc } => write!(f, "program counter {pc} left the program"),
            SimError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} instructions exceeded")
            }
            SimError::UnresolvedTarget => write!(f, "unresolved branch target at execution time"),
            SimError::TooManyArguments { count } => write!(
                f,
                "{count} arguments passed but only r0-r3 are used for arguments"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::MemoryFault {
            address: 0x1234,
            size: 4,
            is_store: true,
        };
        assert!(e.to_string().contains("store"));
        assert!(e.to_string().contains("0x00001234"));
        let e = SimError::UndefinedLabel {
            label: "memcmp".to_string(),
        };
        assert!(e.to_string().contains("memcmp"));
    }
}
