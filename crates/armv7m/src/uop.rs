//! The pre-decoded micro-op form of a [`Program`].
//!
//! The simulator's hot loop used to re-decode every [`Instr`] on every
//! dynamic step: pattern-match the 24-way enum, linear-search register
//! numbers through [`Reg::ALL`], re-check branch-target resolution, clone
//! and sort `PUSH`/`POP` register lists, and re-derive the cycle cost.
//! [`DecodedProgram::decode`] performs all of that exactly once per program,
//! producing one dense [`Uop`] per instruction with every operand resolved:
//!
//! * register operands become architectural indices (`u8`), so register
//!   access is a direct array load instead of a search;
//! * branch targets become instruction indices (`u32`), with the
//!   could-not-happen unresolved forms kept as dedicated micro-ops so the
//!   reference interpreter's error behaviour is preserved bit-for-bit;
//! * the flexible second operand is split into register/immediate variants,
//!   removing a per-step match;
//! * `PUSH`/`POP` register lists are sorted at decode time (the original
//!   order is retained for disassembly) and their cycle costs precomputed;
//! * per-instruction constant cycle costs (`MOV` of a wide immediate,
//!   `PUSH`/`POP`) are baked into the micro-op.
//!
//! The decoded form is **derived data**: it is cached inside the program
//! behind a `OnceLock` ([`Program::decoded`]), never persisted, never
//! hashed into artifact fingerprints, and excluded from program equality.
//! Its correctness is proven differentially — the `Instr`-level interpreter
//! survives as an independent oracle behind `Simulator::reference`, and the
//! fuzz harness asserts byte-identical execution of both.
//!
//! The `match instr` inside [`DecodedProgram::decode`] deliberately has no
//! wildcard arm: adding an [`Instr`] variant without a micro-op fails to
//! compile instead of silently falling back to anything.

use crate::cycles::instruction_cycles;
use crate::instr::{Cond, Instr, Operand2, Reg, Target};
use crate::program::Program;

/// One pre-decoded micro-op. Index `i` of [`DecodedProgram::uops`] executes
/// instruction `i` of the program it was decoded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Uop {
    /// `mov rd, #imm` with its precomputed cycle cost (wide immediates are
    /// a `MOVW`+`MOVT` pair).
    MovImm { rd: u8, imm: u32, cycles: u8 },
    /// `mov rd, rm`.
    Mov { rd: u8, rm: u8 },
    /// `add rd, rn, rm`.
    AddR { rd: u8, rn: u8, rm: u8 },
    /// `add rd, rn, #imm`.
    AddI { rd: u8, rn: u8, imm: u32 },
    /// `sub rd, rn, rm`.
    SubR { rd: u8, rn: u8, rm: u8 },
    /// `sub rd, rn, #imm`.
    SubI { rd: u8, rn: u8, imm: u32 },
    /// `and rd, rn, rm`.
    AndR { rd: u8, rn: u8, rm: u8 },
    /// `and rd, rn, #imm`.
    AndI { rd: u8, rn: u8, imm: u32 },
    /// `orr rd, rn, rm`.
    OrrR { rd: u8, rn: u8, rm: u8 },
    /// `orr rd, rn, #imm`.
    OrrI { rd: u8, rn: u8, imm: u32 },
    /// `eor rd, rn, rm`.
    EorR { rd: u8, rn: u8, rm: u8 },
    /// `eor rd, rn, #imm`.
    EorI { rd: u8, rn: u8, imm: u32 },
    /// `lsl rd, rn, rm`.
    LslR { rd: u8, rn: u8, rm: u8 },
    /// `lsl rd, rn, #imm` (the shift amount is masked at execution, as the
    /// reference does — the unmasked immediate is kept for disassembly).
    LslI { rd: u8, rn: u8, imm: u32 },
    /// `lsr rd, rn, rm`.
    LsrR { rd: u8, rn: u8, rm: u8 },
    /// `lsr rd, rn, #imm`.
    LsrI { rd: u8, rn: u8, imm: u32 },
    /// `asr rd, rn, rm`.
    AsrR { rd: u8, rn: u8, rm: u8 },
    /// `asr rd, rn, #imm`.
    AsrI { rd: u8, rn: u8, imm: u32 },
    /// `mul rd, rn, rm`.
    Mul { rd: u8, rn: u8, rm: u8 },
    /// `mls rd, rn, rm, ra`.
    Mls { rd: u8, rn: u8, rm: u8, ra: u8 },
    /// `udiv rd, rn, rm` (cycle cost stays data-dependent).
    Udiv { rd: u8, rn: u8, rm: u8 },
    /// `cmp rn, rm`.
    CmpR { rn: u8, rm: u8 },
    /// `cmp rn, #imm`.
    CmpI { rn: u8, imm: u32 },
    /// `b @dest` with the target pre-resolved to an instruction index.
    B { dest: u32 },
    /// `b<cond> @dest`.
    BCond { cond: Cond, dest: u32 },
    /// `bl @dest`.
    Bl { dest: u32 },
    /// `b label` whose target never resolved: executing it is the
    /// `UnresolvedTarget` error. Unreachable through [`crate::ProgramBuilder`]
    /// (assembly resolves every label or fails), kept for decoder totality.
    BUnres { label: Box<str> },
    /// `b<cond> label`, unresolved: errors only when the condition holds
    /// (the fall-through costs one cycle, exactly like the reference).
    BCondUnres { cond: Cond, label: Box<str> },
    /// `bl label`, unresolved: writes `lr` first, then errors (the partial
    /// architectural effect the reference interpreter has).
    BlUnres { label: Box<str> },
    /// `bx rm`.
    Bx { rm: u8 },
    /// `ldr rt, [rn, #offset]`.
    Ldr { rt: u8, rn: u8, offset: i32 },
    /// `str rt, [rn, #offset]`.
    Str { rt: u8, rn: u8, offset: i32 },
    /// `ldrb rt, [rn, #offset]`.
    Ldrb { rt: u8, rn: u8, offset: i32 },
    /// `strb rt, [rn, #offset]`.
    Strb { rt: u8, rn: u8, offset: i32 },
    /// `push {..}`: `sorted` is the store order (register-number order,
    /// presorted at decode), `listed` the builder's order for disassembly,
    /// `cycles` the precomputed `1 + n` cost.
    Push {
        sorted: Box<[u8]>,
        listed: Box<[u8]>,
        cycles: u8,
    },
    /// `pop {..}`: like [`Uop::Push`], with the `+2` pipeline-refill cost
    /// already folded in when the list contains `pc`.
    Pop {
        sorted: Box<[u8]>,
        listed: Box<[u8]>,
        cycles: u8,
    },
    /// `nop`.
    Nop,
}

/// The architectural index of the stack pointer.
pub(crate) const SP_INDEX: u8 = 13;

/// The architectural index of the link register.
pub(crate) const LR_INDEX: u8 = 14;

/// The architectural index of the program counter in a pop list.
pub(crate) const PC_INDEX: u8 = 15;

/// A program decoded once into dense micro-ops, cached inside [`Program`]
/// and shared by every simulator holding the same `Arc<Program>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    uops: Vec<Uop>,
    decode_micros: u64,
}

impl DecodedProgram {
    /// Decodes every instruction of `program` into exactly one micro-op.
    ///
    /// Timed against the shared `secbranch-obs` monotonic clock and traced
    /// as a `decode` span — one per program lifetime (the `OnceLock` in
    /// [`Program::decoded`] guarantees at most one decode per `Arc`), so
    /// the hot uop dispatch loop itself carries no instrumentation.
    #[must_use]
    pub(crate) fn decode(program: &Program) -> Self {
        let _span = secbranch_obs::span_with("decode", || format!("{} instrs", program.len()));
        let started = secbranch_obs::monotonic_micros();
        let uops = program.instructions().iter().map(decode_instr).collect();
        DecodedProgram {
            uops,
            decode_micros: secbranch_obs::monotonic_micros().saturating_sub(started),
        }
    }

    /// The micro-ops, index-aligned with the program's instructions.
    #[must_use]
    pub(crate) fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// Number of micro-ops (always equal to the instruction count of the
    /// program this was decoded from — the decoder is total and 1:1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// `true` if the decoded program has no micro-ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Wall-clock microseconds the decode took (surfaced in campaign
    /// statistics; never part of any report or fingerprint).
    #[must_use]
    pub fn decode_micros(&self) -> u64 {
        self.decode_micros
    }

    /// Reconstructs the assembly text of micro-op `index` from the decoded
    /// operands alone. For every instruction this renders the identical
    /// string to the [`Instr`]'s own `Display` — the round-trip property
    /// proving no operand information is lost in decode.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn disassemble(&self, index: usize) -> String {
        disassemble_uop(&self.uops[index])
    }
}

/// Decodes one instruction. Deliberately wildcard-free: a new [`Instr`]
/// variant without a micro-op is a compile error, not a silent fallback.
fn decode_instr(instr: &Instr) -> Uop {
    let r = |reg: Reg| reg.index() as u8;
    match instr {
        Instr::MovImm { rd, imm } => Uop::MovImm {
            rd: r(*rd),
            imm: *imm,
            cycles: instruction_cycles(instr, false, None) as u8,
        },
        Instr::Mov { rd, rm } => Uop::Mov {
            rd: r(*rd),
            rm: r(*rm),
        },
        Instr::Add { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::AddR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::AddI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Sub { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::SubR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::SubI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::And { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::AndR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::AndI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Orr { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::OrrR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::OrrI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Eor { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::EorR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::EorI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Lsl { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::LslR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::LslI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Lsr { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::LsrR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::LsrI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Asr { rd, rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::AsrR {
                rd: r(*rd),
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::AsrI {
                rd: r(*rd),
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::Mul { rd, rn, rm } => Uop::Mul {
            rd: r(*rd),
            rn: r(*rn),
            rm: r(*rm),
        },
        Instr::Mls { rd, rn, rm, ra } => Uop::Mls {
            rd: r(*rd),
            rn: r(*rn),
            rm: r(*rm),
            ra: r(*ra),
        },
        Instr::Udiv { rd, rn, rm } => Uop::Udiv {
            rd: r(*rd),
            rn: r(*rn),
            rm: r(*rm),
        },
        Instr::Cmp { rn, op2 } => match op2 {
            Operand2::Reg(rm) => Uop::CmpR {
                rn: r(*rn),
                rm: r(*rm),
            },
            Operand2::Imm(imm) => Uop::CmpI {
                rn: r(*rn),
                imm: *imm,
            },
        },
        Instr::B { target } => match target {
            Target::Resolved(dest) => Uop::B {
                dest: index_to_u32(*dest),
            },
            Target::Label(label) => Uop::BUnres {
                label: label.as_str().into(),
            },
        },
        Instr::BCond { cond, target } => match target {
            Target::Resolved(dest) => Uop::BCond {
                cond: *cond,
                dest: index_to_u32(*dest),
            },
            Target::Label(label) => Uop::BCondUnres {
                cond: *cond,
                label: label.as_str().into(),
            },
        },
        Instr::Bl { target } => match target {
            Target::Resolved(dest) => Uop::Bl {
                dest: index_to_u32(*dest),
            },
            Target::Label(label) => Uop::BlUnres {
                label: label.as_str().into(),
            },
        },
        Instr::Bx { rm } => Uop::Bx { rm: r(*rm) },
        Instr::Ldr { rt, rn, offset } => Uop::Ldr {
            rt: r(*rt),
            rn: r(*rn),
            offset: *offset,
        },
        Instr::Str { rt, rn, offset } => Uop::Str {
            rt: r(*rt),
            rn: r(*rn),
            offset: *offset,
        },
        Instr::Ldrb { rt, rn, offset } => Uop::Ldrb {
            rt: r(*rt),
            rn: r(*rn),
            offset: *offset,
        },
        Instr::Strb { rt, rn, offset } => Uop::Strb {
            rt: r(*rt),
            rn: r(*rn),
            offset: *offset,
        },
        Instr::Push { regs } => {
            let (sorted, listed) = reg_lists(regs);
            Uop::Push {
                sorted,
                listed,
                cycles: instruction_cycles(instr, false, None) as u8,
            }
        }
        Instr::Pop { regs } => {
            let (sorted, listed) = reg_lists(regs);
            Uop::Pop {
                sorted,
                listed,
                cycles: instruction_cycles(instr, false, None) as u8,
            }
        }
        Instr::Nop => Uop::Nop,
    }
}

fn index_to_u32(index: usize) -> u32 {
    u32::try_from(index).expect("instruction index fits u32")
}

/// The store/load order (sorted by register number, as the reference sorts
/// per step) and the builder's original order (for disassembly).
fn reg_lists(regs: &[Reg]) -> (Box<[u8]>, Box<[u8]>) {
    let listed: Box<[u8]> = regs.iter().map(|r| r.index() as u8).collect();
    let mut sorted = listed.to_vec();
    sorted.sort_unstable();
    (sorted.into(), listed)
}

fn reg_name(index: u8) -> &'static str {
    match index {
        0 => "r0",
        1 => "r1",
        2 => "r2",
        3 => "r3",
        4 => "r4",
        5 => "r5",
        6 => "r6",
        7 => "r7",
        8 => "r8",
        9 => "r9",
        10 => "r10",
        11 => "r11",
        12 => "r12",
        13 => "sp",
        14 => "lr",
        15 => "pc",
        other => unreachable!("register index {other} out of range"),
    }
}

fn reg_list_text(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|i| reg_name(*i).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn alu_r(mnemonic: &str, rd: u8, rn: u8, rm: u8) -> String {
    format!(
        "{mnemonic} {}, {}, {}",
        reg_name(rd),
        reg_name(rn),
        reg_name(rm)
    )
}

fn alu_i(mnemonic: &str, rd: u8, rn: u8, imm: u32) -> String {
    format!("{mnemonic} {}, {}, #{imm}", reg_name(rd), reg_name(rn))
}

fn disassemble_uop(uop: &Uop) -> String {
    match uop {
        Uop::MovImm { rd, imm, .. } => format!("mov {}, #{imm}", reg_name(*rd)),
        Uop::Mov { rd, rm } => format!("mov {}, {}", reg_name(*rd), reg_name(*rm)),
        Uop::AddR { rd, rn, rm } => alu_r("add", *rd, *rn, *rm),
        Uop::AddI { rd, rn, imm } => alu_i("add", *rd, *rn, *imm),
        Uop::SubR { rd, rn, rm } => alu_r("sub", *rd, *rn, *rm),
        Uop::SubI { rd, rn, imm } => alu_i("sub", *rd, *rn, *imm),
        Uop::AndR { rd, rn, rm } => alu_r("and", *rd, *rn, *rm),
        Uop::AndI { rd, rn, imm } => alu_i("and", *rd, *rn, *imm),
        Uop::OrrR { rd, rn, rm } => alu_r("orr", *rd, *rn, *rm),
        Uop::OrrI { rd, rn, imm } => alu_i("orr", *rd, *rn, *imm),
        Uop::EorR { rd, rn, rm } => alu_r("eor", *rd, *rn, *rm),
        Uop::EorI { rd, rn, imm } => alu_i("eor", *rd, *rn, *imm),
        Uop::LslR { rd, rn, rm } => alu_r("lsl", *rd, *rn, *rm),
        Uop::LslI { rd, rn, imm } => alu_i("lsl", *rd, *rn, *imm),
        Uop::LsrR { rd, rn, rm } => alu_r("lsr", *rd, *rn, *rm),
        Uop::LsrI { rd, rn, imm } => alu_i("lsr", *rd, *rn, *imm),
        Uop::AsrR { rd, rn, rm } => alu_r("asr", *rd, *rn, *rm),
        Uop::AsrI { rd, rn, imm } => alu_i("asr", *rd, *rn, *imm),
        Uop::Mul { rd, rn, rm } => alu_r("mul", *rd, *rn, *rm),
        Uop::Mls { rd, rn, rm, ra } => format!(
            "mls {}, {}, {}, {}",
            reg_name(*rd),
            reg_name(*rn),
            reg_name(*rm),
            reg_name(*ra)
        ),
        Uop::Udiv { rd, rn, rm } => alu_r("udiv", *rd, *rn, *rm),
        Uop::CmpR { rn, rm } => format!("cmp {}, {}", reg_name(*rn), reg_name(*rm)),
        Uop::CmpI { rn, imm } => format!("cmp {}, #{imm}", reg_name(*rn)),
        Uop::B { dest } => format!("b @{dest}"),
        Uop::BCond { cond, dest } => format!("b{cond} @{dest}"),
        Uop::Bl { dest } => format!("bl @{dest}"),
        Uop::BUnres { label } => format!("b {label}"),
        Uop::BCondUnres { cond, label } => format!("b{cond} {label}"),
        Uop::BlUnres { label } => format!("bl {label}"),
        Uop::Bx { rm } => format!("bx {}", reg_name(*rm)),
        Uop::Ldr { rt, rn, offset } => {
            format!("ldr {}, [{}, #{offset}]", reg_name(*rt), reg_name(*rn))
        }
        Uop::Str { rt, rn, offset } => {
            format!("str {}, [{}, #{offset}]", reg_name(*rt), reg_name(*rn))
        }
        Uop::Ldrb { rt, rn, offset } => {
            format!("ldrb {}, [{}, #{offset}]", reg_name(*rt), reg_name(*rn))
        }
        Uop::Strb { rt, rn, offset } => {
            format!("strb {}, [{}, #{offset}]", reg_name(*rt), reg_name(*rn))
        }
        Uop::Push { listed, .. } => format!("push {{{}}}", reg_list_text(listed)),
        Uop::Pop { listed, .. } => format!("pop {{{}}}", reg_list_text(listed)),
        Uop::Nop => "nop".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Operand2, Reg, Target};
    use crate::program::ProgramBuilder;

    fn decode_one(instr: Instr) -> Uop {
        decode_instr(&instr)
    }

    #[test]
    fn operands_resolve_to_indices_and_destinations() {
        assert_eq!(
            decode_one(Instr::Mov {
                rd: Reg::Sp,
                rm: Reg::R9
            }),
            Uop::Mov { rd: 13, rm: 9 }
        );
        assert_eq!(
            decode_one(Instr::Add {
                rd: Reg::R1,
                rn: Reg::R2,
                op2: Operand2::Imm(7)
            }),
            Uop::AddI {
                rd: 1,
                rn: 2,
                imm: 7
            }
        );
        assert_eq!(
            decode_one(Instr::B {
                target: Target::Resolved(42)
            }),
            Uop::B { dest: 42 }
        );
        assert_eq!(
            decode_one(Instr::B {
                target: Target::label("later")
            }),
            Uop::BUnres {
                label: "later".into()
            }
        );
    }

    #[test]
    fn push_and_pop_lists_are_presorted_with_precomputed_cycles() {
        let uop = decode_one(Instr::Push {
            regs: vec![Reg::Lr, Reg::R4],
        });
        let Uop::Push {
            sorted,
            listed,
            cycles,
        } = uop
        else {
            panic!("push decodes to a push micro-op");
        };
        assert_eq!(&*sorted, &[4, 14], "store order is register-number order");
        assert_eq!(&*listed, &[14, 4], "builder order survives for listings");
        assert_eq!(cycles, 3, "1 + number of registers");

        let uop = decode_one(Instr::Pop {
            regs: vec![Reg::R4, Reg::Pc],
        });
        let Uop::Pop { sorted, cycles, .. } = uop else {
            panic!("pop decodes to a pop micro-op");
        };
        assert_eq!(sorted.last(), Some(&PC_INDEX), "pc always sorts last");
        assert_eq!(cycles, 5, "1 + n, +2 for the pc pipeline refill");
    }

    #[test]
    fn movimm_cycles_distinguish_wide_immediates() {
        assert!(matches!(
            decode_one(Instr::MovImm {
                rd: Reg::R0,
                imm: 10
            }),
            Uop::MovImm { cycles: 1, .. }
        ));
        assert!(matches!(
            decode_one(Instr::MovImm {
                rd: Reg::R0,
                imm: 0xDEAD_BEEF
            }),
            Uop::MovImm { cycles: 2, .. }
        ));
    }

    #[test]
    fn decode_is_one_to_one_and_cached_per_program() {
        let mut p = ProgramBuilder::new();
        p.label("f");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Imm(3),
        });
        p.push(Instr::BCond {
            cond: Cond::Lo,
            target: Target::label("f"),
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let program = p.assemble().expect("assembles");
        assert!(program.decode_stats().is_none(), "nothing decoded yet");
        let decoded = program.decoded();
        assert_eq!(decoded.len(), program.len(), "exactly one uop per instr");
        assert!(std::ptr::eq(decoded, program.decoded()), "decoded once");
        let (uops, _micros) = program.decode_stats().expect("stats after decode");
        assert_eq!(uops, program.len() as u64);
    }

    #[test]
    fn disassembly_round_trips_through_the_decoder() {
        let mut p = ProgramBuilder::new();
        p.label("f");
        p.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 70_000,
        });
        p.push(Instr::Lsl {
            rd: Reg::R8,
            rn: Reg::R1,
            op2: Operand2::Imm(33),
        });
        p.push(Instr::Ldr {
            rt: Reg::R2,
            rn: Reg::Sp,
            offset: -8,
        });
        p.push(Instr::Push {
            regs: vec![Reg::R4, Reg::R5, Reg::Lr],
        });
        p.push(Instr::BCond {
            cond: Cond::Hi,
            target: Target::label("f"),
        });
        p.push(Instr::Bl {
            target: Target::label("f"),
        });
        p.push(Instr::Pop {
            regs: vec![Reg::R4, Reg::R5, Reg::Pc],
        });
        let program = p.assemble().expect("assembles");
        let decoded = program.decoded();
        for (i, instr) in program.instructions().iter().enumerate() {
            assert_eq!(
                decoded.disassemble(i),
                instr.to_string(),
                "instruction {i} must round-trip"
            );
        }
    }
}
