//! The execution engine: runs assembled programs on a [`Machine`], counts
//! cycles and retired instructions, and exposes fault-injection hooks.

use std::sync::Arc;

use crate::cycles::{instruction_cycles, udiv_cycles};
use crate::error::SimError;
use crate::instr::{Instr, Operand2, Reg, Target};
use crate::machine::{Machine, RETURN_MAGIC};
use crate::program::Program;
use crate::uop::{Uop, LR_INDEX, PC_INDEX, SP_INDEX};

/// Result of running a program until it returned to the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecResult {
    /// The value left in `r0` when the program returned.
    pub return_value: u32,
    /// Total consumed cycles according to the cycle model.
    pub cycles: u64,
    /// Number of retired (executed, not skipped) instructions.
    pub instructions: u64,
    /// Number of CFI checks executed.
    pub cfi_checks: u32,
    /// Number of CFI violations latched.
    pub cfi_violations: u32,
}

impl ExecResult {
    /// `true` if the CFI unit observed no violation.
    #[must_use]
    pub fn cfi_clean(&self) -> bool {
        self.cfi_violations == 0
    }
}

/// What a fault hook asks the simulator to do with the instruction that is
/// about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute the instruction normally (possibly after the hook mutated the
    /// machine state).
    Continue,
    /// Skip the instruction (the instruction-skip fault model); the program
    /// counter advances and the skipped instruction costs one cycle.
    Skip,
    /// End the run immediately with the [`SimError::StepLimitExceeded`]
    /// error it is guaranteed to produce: the hook has proven the execution
    /// can never halt (it observed an exact recurrence of the machine's
    /// program-observable state at the same program counter with no further
    /// faults pending, so the run is periodic from here on).
    ///
    /// The returned error carries the run's `max_steps` as its limit —
    /// byte-identical to what running the remaining steps would return —
    /// which is what lets differential campaign executors cut endless loops
    /// short without perturbing any report.
    DivergenceProven,
}

/// A fault-injection hook consulted before every instruction.
///
/// Implementations may mutate the [`Machine`] (flip register, memory or flag
/// bits — the fault models of Section II) and decide whether the instruction
/// executes or is skipped.
pub trait FaultHook {
    /// Called before executing the instruction at index `pc` as dynamic
    /// instruction number `step`.
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction;
}

/// The no-op hook used for fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn before_execute(&mut self, _: u64, _: usize, _: &Instr, _: &mut Machine) -> FaultAction {
        FaultAction::Continue
    }
}

/// A resumable execution position between two dynamic steps of one call,
/// produced by [`Simulator::begin_call`], [`RunCursor::resumed`] or a
/// paused [`Simulator::run_segment`].
///
/// The cursor carries everything the interpreter loop needs besides the
/// [`Machine`] itself: the next instruction, the dynamic step count (which
/// fault hooks and `max_steps` are keyed on), the cycle/retire counters
/// accumulated so far in this call, and the CFI baselines captured when the
/// call started. Running a call as one segment or as many produces
/// bit-identical [`ExecResult`]s and errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCursor {
    pc: u64,
    steps_done: u64,
    cycles: u64,
    retired: u64,
    checks_before: u32,
    violations_before: u32,
}

impl RunCursor {
    /// A cursor resuming at instruction index `pc` after `steps_done`
    /// dynamic steps, for a machine restored from a mid-run snapshot.
    ///
    /// The CFI baselines are zero — snapshots carry the prefix's monitor
    /// counters, so the eventual [`ExecResult`] reports full-run CFI deltas
    /// while `cycles`/`instructions` count only the resumed suffix, exactly
    /// like [`Simulator::resume_with_faults`].
    #[must_use]
    pub fn resumed(pc: usize, steps_done: u64) -> Self {
        RunCursor {
            pc: pc as u64,
            steps_done,
            cycles: 0,
            retired: 0,
            checks_before: 0,
            violations_before: 0,
        }
    }

    /// The instruction index about to execute.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc as usize
    }

    /// Dynamic steps completed so far (the next step is `steps_done + 1`).
    #[must_use]
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }
}

/// How one [`Simulator::run_segment`] ended: the call completed (or will
/// never complete — errors are returned as `Err` instead), or it paused at
/// the requested step boundary and can be resumed with the returned cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentEnd {
    /// The program returned to the harness.
    Done(ExecResult),
    /// Execution paused after completing `pause_after` dynamic steps; the
    /// machine holds the mid-run state and the cursor resumes it.
    Paused(RunCursor),
}

/// A simulator instance: an assembled program plus machine state.
///
/// The program is held behind an [`Arc`] and shared between simulators:
/// cloning a simulator (or constructing one via [`Simulator::from_shared`])
/// allocates only a fresh [`Machine`], never a copy of the code. This is
/// what makes the fault campaigns — millions of injections, each on a
/// pristine simulator — cheap.
///
/// Two interpreters back the same public API. [`Simulator::new`] and
/// [`Simulator::from_shared`] execute the pre-decoded micro-op form
/// ([`Program::decoded`]); [`Simulator::reference`] retains the original
/// `Instr`-level interpreter as an independent oracle. Both produce
/// bit-identical [`ExecResult`]s, errors, cycle counts and machine states —
/// the differential fuzz harness (`tests/interp_differential.rs`) holds
/// them to that.
#[derive(Debug, Clone)]
pub struct Simulator {
    program: Arc<Program>,
    machine: Machine,
    use_uops: bool,
}

impl Simulator {
    /// Creates a simulator with `memory_size` bytes of RAM, executing the
    /// pre-decoded micro-op form of the program.
    #[must_use]
    pub fn new(program: Program, memory_size: u32) -> Self {
        Simulator::from_shared(Arc::new(program), memory_size)
    }

    /// Creates a simulator over an already-shared program: only the
    /// [`Machine`] is allocated, the code is reference-counted. The decoded
    /// micro-op form is shared through the same `Arc`, so sibling
    /// simulators decode at most once between them.
    #[must_use]
    pub fn from_shared(program: Arc<Program>, memory_size: u32) -> Self {
        Simulator {
            program,
            machine: Machine::new(memory_size),
            use_uops: true,
        }
    }

    /// Creates a simulator that executes via the retained `Instr`-level
    /// reference interpreter instead of the micro-op dispatch.
    ///
    /// The reference path shares no code with the decoder or the micro-op
    /// loop, which makes it an independent oracle: any decode or dispatch
    /// bug shows up as a divergence between the two interpreters.
    #[must_use]
    pub fn reference(program: Program, memory_size: u32) -> Self {
        Simulator::reference_from_shared(Arc::new(program), memory_size)
    }

    /// Like [`Simulator::reference`], over an already-shared program.
    #[must_use]
    pub fn reference_from_shared(program: Arc<Program>, memory_size: u32) -> Self {
        Simulator {
            program,
            machine: Machine::new(memory_size),
            use_uops: false,
        }
    }

    /// `true` if this simulator runs the `Instr`-level reference
    /// interpreter rather than the micro-op dispatch.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        !self.use_uops
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The shared handle to the program (for building sibling simulators
    /// without copying the code).
    #[must_use]
    pub fn shared_program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The machine state (for workload setup and result inspection).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine state.
    #[must_use]
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Calls the function at `entry` with up to four arguments in r0–r3,
    /// running until it returns to the harness or `max_steps` instructions
    /// have retired. Registers r0–r3, the flags and the stack pointer are
    /// reset for the call; memory and the CFI unit are left as they are.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for unknown entry points, too many arguments,
    /// memory faults, runaway programs and exceeded step limits.
    pub fn call(
        &mut self,
        entry: &str,
        args: &[u32],
        max_steps: u64,
    ) -> Result<ExecResult, SimError> {
        self.call_with_faults(entry, args, max_steps, &mut NoFaults)
    }

    /// Like [`Simulator::call`], but consults `faults` before every
    /// instruction.
    ///
    /// Generic over the hook type so concrete hooks inline into the
    /// interpreter loop (`&mut dyn FaultHook` still works — the dynamic
    /// call is simply paid per step in that case).
    ///
    /// # Errors
    ///
    /// See [`Simulator::call`].
    pub fn call_with_faults<F: FaultHook + ?Sized>(
        &mut self,
        entry: &str,
        args: &[u32],
        max_steps: u64,
        faults: &mut F,
    ) -> Result<ExecResult, SimError> {
        let cursor = self.begin_call(entry, args)?;
        match self.run_from(cursor, None, max_steps, faults)? {
            SegmentEnd::Done(result) => Ok(result),
            SegmentEnd::Paused(_) => unreachable!("no pause requested"),
        }
    }

    /// Prepares a call without running it: validates the entry point,
    /// loads the arguments into r0–r3 and resets sp/lr exactly as
    /// [`Simulator::call`] does, and returns the cursor positioned before
    /// dynamic step 1. Drive it with [`Simulator::run_segment`] — running
    /// the segments back to back is bit-identical to one
    /// [`Simulator::call_with_faults`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for unknown entry points and too many arguments.
    pub fn begin_call(&mut self, entry: &str, args: &[u32]) -> Result<RunCursor, SimError> {
        if args.len() > 4 {
            return Err(SimError::TooManyArguments { count: args.len() });
        }
        let entry_index = self
            .program
            .label(entry)
            .ok_or_else(|| SimError::UnknownEntryPoint {
                label: entry.to_string(),
            })?;
        for (i, reg) in [Reg::R0, Reg::R1, Reg::R2, Reg::R3].iter().enumerate() {
            self.machine
                .set_reg(*reg, args.get(i).copied().unwrap_or(0));
        }
        self.machine
            .set_reg(Reg::Sp, self.machine.memory_size() & !7);
        self.machine.set_reg(Reg::Lr, RETURN_MAGIC);
        Ok(RunCursor {
            pc: entry_index as u64,
            steps_done: 0,
            cycles: 0,
            retired: 0,
            checks_before: self.machine.cfi.checks(),
            violations_before: self.machine.cfi.violations(),
        })
    }

    /// Runs from `cursor` until the call completes, `max_steps` total
    /// dynamic steps are reached (an error, as in a full run), or —
    /// when `pause_after` is given — `pause_after` dynamic steps have
    /// completed, whichever comes first.
    ///
    /// Pausing is transparent: resuming the returned cursor continues the
    /// call as if it had never paused, with identical results, counters and
    /// error behaviour. This is the building block of differential fault
    /// campaigns — pause at reference checkpoints to test for
    /// reconvergence, or pause right after a fault to snapshot and fan out.
    ///
    /// # Errors
    ///
    /// See [`Simulator::call`].
    pub fn run_segment<F: FaultHook + ?Sized>(
        &mut self,
        cursor: RunCursor,
        pause_after: Option<u64>,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<SegmentEnd, SimError> {
        self.run_from(cursor, pause_after, max_steps, faults)
    }

    /// Resumes execution mid-call: the machine must already hold the
    /// architectural state of a run paused before executing dynamic step
    /// `steps_done + 1` at instruction index `pc` (normally restored from a
    /// [`crate::MachineState`] snapshot taken during a recorded run).
    ///
    /// The step counter continues from `steps_done`, so fault hooks see the
    /// same step numbers as in a full run and `max_steps` bounds the
    /// *total* dynamic length, exactly as [`Simulator::call_with_faults`]
    /// would. The reported CFI deltas count from the machine's zero point
    /// (snapshots carry the prefix's counters), so a resumed run's CFI
    /// verdict matches the full run's; `cycles`/`instructions` however
    /// count only the resumed suffix — callers that need full-run counters
    /// must take them from the recording.
    ///
    /// # Errors
    ///
    /// See [`Simulator::call`].
    pub fn resume_with_faults<F: FaultHook + ?Sized>(
        &mut self,
        pc: usize,
        steps_done: u64,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<ExecResult, SimError> {
        match self.run_from(RunCursor::resumed(pc, steps_done), None, max_steps, faults)? {
            SegmentEnd::Done(result) => Ok(result),
            SegmentEnd::Paused(_) => unreachable!("no pause requested"),
        }
    }

    /// The interpreter entry point, shared by fresh calls, resumed runs
    /// and paused/resumed segments: dispatches to the micro-op loop or the
    /// retained reference loop, which are step-for-step interchangeable.
    fn run_from<F: FaultHook + ?Sized>(
        &mut self,
        cursor: RunCursor,
        pause_after: Option<u64>,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<SegmentEnd, SimError> {
        if self.use_uops {
            self.run_from_uops(cursor, pause_after, max_steps, faults)
        } else {
            self.run_from_reference(cursor, pause_after, max_steps, faults)
        }
    }

    /// The micro-op interpreter loop: one pre-decoded [`Uop`] per
    /// instruction, register indices and branch targets already resolved,
    /// constant cycle costs baked in. Check ordering, fault-hook protocol,
    /// partial-effect-then-error semantics and every counter are identical
    /// to [`Simulator::run_from_reference`] — the fuzz harness proves it.
    fn run_from_uops<F: FaultHook + ?Sized>(
        &mut self,
        cursor: RunCursor,
        pause_after: Option<u64>,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<SegmentEnd, SimError> {
        let RunCursor {
            mut pc,
            steps_done: mut steps,
            mut cycles,
            mut retired,
            checks_before,
            violations_before,
        } = cursor;
        // As in the reference loop: hold the program through a local `Arc`
        // so the micro-ops (and the `Instr`s handed to fault hooks) can be
        // borrowed while the hook borrows the machine mutably.
        let program = Arc::clone(&self.program);
        let uops = program.decoded().uops();
        let instrs = program.instructions();

        // Fold the pause boundary and the step limit into a single sentinel
        // so the hot loop pays one compare per step; the slow branch below
        // disambiguates in the original order (pause first, then limit).
        let boundary = pause_after.unwrap_or(u64::MAX).min(max_steps);
        loop {
            if steps >= boundary {
                if pause_after.is_some_and(|pause| steps >= pause) {
                    return Ok(SegmentEnd::Paused(RunCursor {
                        pc,
                        steps_done: steps,
                        cycles,
                        retired,
                        checks_before,
                        violations_before,
                    }));
                }
                return Err(SimError::StepLimitExceeded { limit: max_steps });
            }
            let index = pc as usize;
            // One fused fetch+bounds check for both views of the
            // instruction (`decode` guarantees the arrays are 1:1).
            let (Some(uop), Some(instr)) = (uops.get(index), instrs.get(index)) else {
                return Err(SimError::PcOutOfRange { pc });
            };
            steps += 1;
            // Fault hooks keep seeing the original `Instr` (BranchInversion
            // pattern-matches `Instr::BCond`), never the decoded form.
            match faults.before_execute(steps, index, instr, &mut self.machine) {
                FaultAction::Skip => {
                    pc += 1;
                    cycles += 1;
                    continue;
                }
                FaultAction::Continue => {}
                FaultAction::DivergenceProven => {
                    return Err(SimError::StepLimitExceeded { limit: max_steps });
                }
            }
            retired += 1;
            let mut next_pc = pc + 1;
            let mut halted = false;

            match uop {
                Uop::MovImm { rd, imm, cycles: c } => {
                    self.machine.set_reg_index(*rd, *imm);
                    cycles += u64::from(*c);
                }
                Uop::Mov { rd, rm } => {
                    let v = self.machine.reg_index(*rm);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::AddR { rd, rn, rm } => {
                    let v = self
                        .machine
                        .reg_index(*rn)
                        .wrapping_add(self.machine.reg_index(*rm));
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::AddI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn).wrapping_add(*imm);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::SubR { rd, rn, rm } => {
                    let v = self
                        .machine
                        .reg_index(*rn)
                        .wrapping_sub(self.machine.reg_index(*rm));
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::SubI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn).wrapping_sub(*imm);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::AndR { rd, rn, rm } => {
                    let v = self.machine.reg_index(*rn) & self.machine.reg_index(*rm);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::AndI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn) & *imm;
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::OrrR { rd, rn, rm } => {
                    let v = self.machine.reg_index(*rn) | self.machine.reg_index(*rm);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::OrrI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn) | *imm;
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::EorR { rd, rn, rm } => {
                    let v = self.machine.reg_index(*rn) ^ self.machine.reg_index(*rm);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::EorI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn) ^ *imm;
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::LslR { rd, rn, rm } => {
                    let v = self
                        .machine
                        .reg_index(*rn)
                        .wrapping_shl(self.machine.reg_index(*rm) & 31);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::LslI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn).wrapping_shl(*imm & 31);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::LsrR { rd, rn, rm } => {
                    let v = self
                        .machine
                        .reg_index(*rn)
                        .wrapping_shr(self.machine.reg_index(*rm) & 31);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::LsrI { rd, rn, imm } => {
                    let v = self.machine.reg_index(*rn).wrapping_shr(*imm & 31);
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::AsrR { rd, rn, rm } => {
                    let v = (self.machine.reg_index(*rn) as i32)
                        .wrapping_shr(self.machine.reg_index(*rm) & 31)
                        as u32;
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::AsrI { rd, rn, imm } => {
                    let v = (self.machine.reg_index(*rn) as i32).wrapping_shr(*imm & 31) as u32;
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::Mul { rd, rn, rm } => {
                    let v = self
                        .machine
                        .reg_index(*rn)
                        .wrapping_mul(self.machine.reg_index(*rm));
                    self.machine.set_reg_index(*rd, v);
                    cycles += 1;
                }
                Uop::Mls { rd, rn, rm, ra } => {
                    let v = self.machine.reg_index(*ra).wrapping_sub(
                        self.machine
                            .reg_index(*rn)
                            .wrapping_mul(self.machine.reg_index(*rm)),
                    );
                    self.machine.set_reg_index(*rd, v);
                    cycles += 2;
                }
                Uop::Udiv { rd, rn, rm } => {
                    let n = self.machine.reg_index(*rn);
                    let d = self.machine.reg_index(*rm);
                    self.machine
                        .set_reg_index(*rd, n.checked_div(d).unwrap_or(0));
                    cycles += udiv_cycles(n, d);
                }
                Uop::CmpR { rn, rm } => {
                    let lhs = self.machine.reg_index(*rn);
                    let rhs = self.machine.reg_index(*rm);
                    self.machine.flags.set_from_cmp(lhs, rhs);
                    cycles += 1;
                }
                Uop::CmpI { rn, imm } => {
                    let lhs = self.machine.reg_index(*rn);
                    self.machine.flags.set_from_cmp(lhs, *imm);
                    cycles += 1;
                }
                Uop::B { dest } => {
                    next_pc = u64::from(*dest);
                    cycles += 2;
                }
                Uop::BCond { cond, dest } => {
                    if self.machine.flags.condition_holds(*cond) {
                        next_pc = u64::from(*dest);
                        cycles += 2;
                    } else {
                        cycles += 1;
                    }
                }
                Uop::Bl { dest } => {
                    self.machine.set_reg_index(LR_INDEX, (pc + 1) as u32);
                    next_pc = u64::from(*dest);
                    cycles += 3;
                }
                Uop::BUnres { .. } => return Err(SimError::UnresolvedTarget),
                Uop::BCondUnres { cond, .. } => {
                    if self.machine.flags.condition_holds(*cond) {
                        return Err(SimError::UnresolvedTarget);
                    }
                    cycles += 1;
                }
                Uop::BlUnres { .. } => {
                    // The reference writes lr before noticing the target
                    // never resolved; the partial effect is preserved.
                    self.machine.set_reg_index(LR_INDEX, (pc + 1) as u32);
                    return Err(SimError::UnresolvedTarget);
                }
                Uop::Bx { rm } => {
                    let dest = self.machine.reg_index(*rm);
                    if dest == RETURN_MAGIC {
                        halted = true;
                    } else {
                        next_pc = u64::from(dest);
                    }
                    cycles += 3;
                }
                Uop::Ldr { rt, rn, offset } => {
                    let addr = self.machine.reg_index(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.load_word(addr)?;
                    self.machine.set_reg_index(*rt, v);
                    cycles += 2;
                }
                Uop::Str { rt, rn, offset } => {
                    let addr = self.machine.reg_index(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.reg_index(*rt);
                    self.machine.store_word(addr, v)?;
                    cycles += 2;
                }
                Uop::Ldrb { rt, rn, offset } => {
                    let addr = self.machine.reg_index(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.load_byte(addr)?;
                    self.machine.set_reg_index(*rt, v);
                    cycles += 2;
                }
                Uop::Strb { rt, rn, offset } => {
                    let addr = self.machine.reg_index(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.reg_index(*rt);
                    self.machine.store_byte(addr, v)?;
                    cycles += 2;
                }
                Uop::Push {
                    sorted, cycles: c, ..
                } => {
                    let sp = self
                        .machine
                        .reg_index(SP_INDEX)
                        .wrapping_sub(4 * sorted.len() as u32);
                    self.machine.set_reg_index(SP_INDEX, sp);
                    for (i, r) in sorted.iter().enumerate() {
                        let v = self.machine.reg_index(*r);
                        self.machine.store_word(sp + 4 * i as u32, v)?;
                    }
                    cycles += u64::from(*c);
                }
                Uop::Pop {
                    sorted, cycles: c, ..
                } => {
                    let sp = self.machine.reg_index(SP_INDEX);
                    for (i, r) in sorted.iter().enumerate() {
                        let v = self.machine.load_word(sp + 4 * i as u32)?;
                        if *r == PC_INDEX {
                            if v == RETURN_MAGIC {
                                halted = true;
                            } else {
                                next_pc = u64::from(v);
                            }
                        } else {
                            self.machine.set_reg_index(*r, v);
                        }
                    }
                    self.machine
                        .set_reg_index(SP_INDEX, sp.wrapping_add(4 * sorted.len() as u32));
                    cycles += u64::from(*c);
                }
                Uop::Nop => cycles += 1,
            }

            if halted {
                return Ok(SegmentEnd::Done(ExecResult {
                    return_value: self.machine.reg(Reg::R0),
                    cycles,
                    instructions: retired,
                    cfi_checks: self.machine.cfi.checks() - checks_before,
                    cfi_violations: self.machine.cfi.violations() - violations_before,
                }));
            }
            pc = next_pc;
        }
    }

    /// The retained `Instr`-level interpreter loop — the independent
    /// reference implementation behind [`Simulator::reference`]. Kept
    /// byte-for-byte as it was before the micro-op rewrite.
    fn run_from_reference<F: FaultHook + ?Sized>(
        &mut self,
        cursor: RunCursor,
        pause_after: Option<u64>,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<SegmentEnd, SimError> {
        let RunCursor {
            mut pc,
            steps_done: mut steps,
            mut cycles,
            mut retired,
            checks_before,
            violations_before,
        } = cursor;
        // Hold the program through a local `Arc` so instructions can be
        // borrowed while the fault hook borrows the machine mutably — one
        // refcount bump per segment instead of an instruction clone per step.
        let program = Arc::clone(&self.program);

        loop {
            if pause_after.is_some_and(|pause| steps >= pause) {
                return Ok(SegmentEnd::Paused(RunCursor {
                    pc,
                    steps_done: steps,
                    cycles,
                    retired,
                    checks_before,
                    violations_before,
                }));
            }
            if steps >= max_steps {
                return Err(SimError::StepLimitExceeded { limit: max_steps });
            }
            if pc as usize >= program.len() {
                return Err(SimError::PcOutOfRange { pc });
            }
            let index = pc as usize;
            let instr = &program.instructions()[index];
            steps += 1;
            match faults.before_execute(steps, index, instr, &mut self.machine) {
                FaultAction::Skip => {
                    pc += 1;
                    cycles += 1;
                    continue;
                }
                FaultAction::Continue => {}
                FaultAction::DivergenceProven => {
                    return Err(SimError::StepLimitExceeded { limit: max_steps });
                }
            }
            retired += 1;
            let mut next_pc = pc + 1;
            let mut branch_taken = false;
            let mut udiv_operands = None;
            let mut halted = false;

            match instr {
                Instr::MovImm { rd, imm } => self.machine.set_reg(*rd, *imm),
                Instr::Mov { rd, rm } => {
                    let v = self.machine.reg(*rm);
                    self.machine.set_reg(*rd, v);
                }
                Instr::Add { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn).wrapping_add(self.op2(*op2));
                    self.machine.set_reg(*rd, v);
                }
                Instr::Sub { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn).wrapping_sub(self.op2(*op2));
                    self.machine.set_reg(*rd, v);
                }
                Instr::Mul { rd, rn, rm } => {
                    let v = self.machine.reg(*rn).wrapping_mul(self.machine.reg(*rm));
                    self.machine.set_reg(*rd, v);
                }
                Instr::Mls { rd, rn, rm, ra } => {
                    let v = self
                        .machine
                        .reg(*ra)
                        .wrapping_sub(self.machine.reg(*rn).wrapping_mul(self.machine.reg(*rm)));
                    self.machine.set_reg(*rd, v);
                }
                Instr::Udiv { rd, rn, rm } => {
                    let n = self.machine.reg(*rn);
                    let d = self.machine.reg(*rm);
                    udiv_operands = Some((n, d));
                    self.machine.set_reg(*rd, n.checked_div(d).unwrap_or(0));
                }
                Instr::And { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn) & self.op2(*op2);
                    self.machine.set_reg(*rd, v);
                }
                Instr::Orr { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn) | self.op2(*op2);
                    self.machine.set_reg(*rd, v);
                }
                Instr::Eor { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn) ^ self.op2(*op2);
                    self.machine.set_reg(*rd, v);
                }
                Instr::Lsl { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn).wrapping_shl(self.op2(*op2) & 31);
                    self.machine.set_reg(*rd, v);
                }
                Instr::Lsr { rd, rn, op2 } => {
                    let v = self.machine.reg(*rn).wrapping_shr(self.op2(*op2) & 31);
                    self.machine.set_reg(*rd, v);
                }
                Instr::Asr { rd, rn, op2 } => {
                    let v = (self.machine.reg(*rn) as i32).wrapping_shr(self.op2(*op2) & 31) as u32;
                    self.machine.set_reg(*rd, v);
                }
                Instr::Cmp { rn, op2 } => {
                    let lhs = self.machine.reg(*rn);
                    let rhs = self.op2(*op2);
                    self.machine.flags.set_from_cmp(lhs, rhs);
                }
                Instr::B { target } => {
                    next_pc = resolve(target)? as u64;
                    branch_taken = true;
                }
                Instr::BCond { cond, target } => {
                    if self.machine.flags.condition_holds(*cond) {
                        next_pc = resolve(target)? as u64;
                        branch_taken = true;
                    }
                }
                Instr::Bl { target } => {
                    self.machine.set_reg(Reg::Lr, (pc + 1) as u32);
                    next_pc = resolve(target)? as u64;
                    branch_taken = true;
                }
                Instr::Bx { rm } => {
                    let dest = self.machine.reg(*rm);
                    if dest == RETURN_MAGIC {
                        halted = true;
                    } else {
                        next_pc = u64::from(dest);
                    }
                    branch_taken = true;
                }
                Instr::Ldr { rt, rn, offset } => {
                    let addr = self.machine.reg(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.load_word(addr)?;
                    self.machine.set_reg(*rt, v);
                }
                Instr::Str { rt, rn, offset } => {
                    let addr = self.machine.reg(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.reg(*rt);
                    self.machine.store_word(addr, v)?;
                }
                Instr::Ldrb { rt, rn, offset } => {
                    let addr = self.machine.reg(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.load_byte(addr)?;
                    self.machine.set_reg(*rt, v);
                }
                Instr::Strb { rt, rn, offset } => {
                    let addr = self.machine.reg(*rn).wrapping_add(*offset as u32);
                    let v = self.machine.reg(*rt);
                    self.machine.store_byte(addr, v)?;
                }
                Instr::Push { regs } => {
                    let mut sp = self.machine.reg(Reg::Sp);
                    sp = sp.wrapping_sub(4 * regs.len() as u32);
                    self.machine.set_reg(Reg::Sp, sp);
                    let mut sorted = regs.clone();
                    sorted.sort_by_key(|r| r.index());
                    for (i, r) in sorted.iter().enumerate() {
                        let v = self.machine.reg(*r);
                        self.machine.store_word(sp + 4 * i as u32, v)?;
                    }
                }
                Instr::Pop { regs } => {
                    let sp = self.machine.reg(Reg::Sp);
                    let mut sorted = regs.clone();
                    sorted.sort_by_key(|r| r.index());
                    for (i, r) in sorted.iter().enumerate() {
                        let v = self.machine.load_word(sp + 4 * i as u32)?;
                        if *r == Reg::Pc {
                            if v == RETURN_MAGIC {
                                halted = true;
                            } else {
                                next_pc = u64::from(v);
                                branch_taken = true;
                            }
                        } else {
                            self.machine.set_reg(*r, v);
                        }
                    }
                    self.machine
                        .set_reg(Reg::Sp, sp.wrapping_add(4 * regs.len() as u32));
                }
                Instr::Nop => {}
            }

            cycles += instruction_cycles(instr, branch_taken, udiv_operands);
            if halted {
                return Ok(SegmentEnd::Done(ExecResult {
                    return_value: self.machine.reg(Reg::R0),
                    cycles,
                    instructions: retired,
                    cfi_checks: self.machine.cfi.checks() - checks_before,
                    cfi_violations: self.machine.cfi.violations() - violations_before,
                }));
            }
            pc = next_pc;
        }
    }

    fn op2(&self, op2: Operand2) -> u32 {
        match op2 {
            Operand2::Reg(r) => self.machine.reg(r),
            Operand2::Imm(i) => i,
        }
    }
}

fn resolve(target: &Target) -> Result<usize, SimError> {
    target.index().ok_or(SimError::UnresolvedTarget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;
    use crate::machine::{CFI_CHECK_ADDR, CFI_UPDATE_ADDR};
    use crate::program::ProgramBuilder;

    /// A small program: `max(a, b)` followed by a CFI-checked epilogue.
    fn max_program() -> Program {
        let mut p = ProgramBuilder::new();
        p.label("max");
        p.push(Instr::Cmp {
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("done"),
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.label("done");
        p.push(Instr::Bx { rm: Reg::Lr });
        p.assemble().expect("assembles")
    }

    #[test]
    fn max_computes_correctly_both_ways() {
        let mut sim = Simulator::new(max_program(), 4096);
        assert_eq!(sim.call("max", &[7, 3], 100).expect("runs").return_value, 7);
        assert_eq!(sim.call("max", &[3, 7], 100).expect("runs").return_value, 7);
        assert_eq!(sim.call("max", &[5, 5], 100).expect("runs").return_value, 5);
    }

    #[test]
    fn cycles_and_instruction_counts_are_reported() {
        let mut sim = Simulator::new(max_program(), 4096);
        let taken = sim.call("max", &[7, 3], 100).expect("runs");
        let not_taken = sim.call("max", &[3, 7], 100).expect("runs");
        // Taken path: cmp(1) + bhs taken(2) + bx(3) = 6 cycles, 3 instructions.
        assert_eq!(taken.instructions, 3);
        assert_eq!(taken.cycles, 6);
        // Not-taken path: cmp(1) + bhs not taken(1) + mov(1) + bx(3) = 6 cycles.
        assert_eq!(not_taken.instructions, 4);
        assert_eq!(not_taken.cycles, 6);
    }

    #[test]
    fn loop_with_memory_and_call() {
        // sum(n): r0 = 0 + 1 + ... + (n-1), using a helper `add` function.
        let mut p = ProgramBuilder::new();
        p.label("add");
        p.push(Instr::Add {
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Reg(Reg::R1),
        });
        p.push(Instr::Bx { rm: Reg::Lr });

        p.label("sum");
        p.push(Instr::Push {
            regs: vec![Reg::R4, Reg::R5, Reg::Lr],
        });
        p.push(Instr::Mov {
            rd: Reg::R4,
            rm: Reg::R0,
        }); // n
        p.push(Instr::MovImm {
            rd: Reg::R5,
            imm: 0,
        }); // i
        p.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 0,
        }); // acc
        p.label("loop");
        p.push(Instr::Cmp {
            rn: Reg::R5,
            op2: Operand2::Reg(Reg::R4),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("exit"),
        });
        p.push(Instr::Mov {
            rd: Reg::R1,
            rm: Reg::R5,
        });
        p.push(Instr::Bl {
            target: Target::label("add"),
        });
        p.push(Instr::Add {
            rd: Reg::R5,
            rn: Reg::R5,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::B {
            target: Target::label("loop"),
        });
        p.label("exit");
        p.push(Instr::Pop {
            regs: vec![Reg::R4, Reg::R5, Reg::Pc],
        });
        let program = p.assemble().expect("assembles");

        let mut sim = Simulator::new(program, 16 * 1024);
        let r = sim.call("sum", &[10], 10_000).expect("runs");
        assert_eq!(r.return_value, 45);
        assert!(r.cycles > r.instructions, "multi-cycle instructions exist");
    }

    #[test]
    fn memory_instructions_access_ram() {
        let mut p = ProgramBuilder::new();
        p.label("store_load");
        p.push(Instr::Str {
            rt: Reg::R1,
            rn: Reg::R0,
            offset: 0,
        });
        p.push(Instr::Ldrb {
            rt: Reg::R2,
            rn: Reg::R0,
            offset: 1,
        });
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R2,
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 4096);
        let r = sim
            .call("store_load", &[100, 0xAABB_CCDD], 100)
            .expect("runs");
        assert_eq!(r.return_value, 0xCC);
        assert_eq!(sim.machine().read_bytes(100, 4), &[0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn udiv_and_mls_compute_a_remainder() {
        // r0 = r0 % r1 via UDIV + MLS (the encoded-compare lowering).
        let mut p = ProgramBuilder::new();
        p.label("urem");
        p.push(Instr::Udiv {
            rd: Reg::R2,
            rn: Reg::R0,
            rm: Reg::R1,
        });
        p.push(Instr::Mls {
            rd: Reg::R0,
            rn: Reg::R2,
            rm: Reg::R1,
            ra: Reg::R0,
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 4096);
        assert_eq!(
            sim.call("urem", &[63_877 * 3 + 123, 63_877], 100)
                .expect("runs")
                .return_value,
            123
        );
    }

    #[test]
    fn cfi_unit_is_driven_by_stores() {
        let mut p = ProgramBuilder::new();
        p.label("cfi_demo");
        // r1 = CFI update address; r2 = value
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: CFI_UPDATE_ADDR,
        });
        p.push(Instr::Str {
            rt: Reg::R0,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: CFI_CHECK_ADDR,
        });
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0x55,
        });
        p.push(Instr::Str {
            rt: Reg::R2,
            rn: Reg::R1,
            offset: 0,
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let program = p.assemble().expect("assembles");

        let mut sim = Simulator::new(program.clone(), 4096);
        let ok = sim.call("cfi_demo", &[0x55], 100).expect("runs");
        assert_eq!(ok.cfi_checks, 1);
        assert!(ok.cfi_clean());

        let mut sim = Simulator::new(program, 4096);
        let bad = sim.call("cfi_demo", &[0x54], 100).expect("runs");
        assert_eq!(bad.cfi_violations, 1);
        assert!(!bad.cfi_clean());
    }

    #[test]
    fn instruction_skip_fault_changes_the_result() {
        struct SkipAt(u64);
        impl FaultHook for SkipAt {
            fn before_execute(
                &mut self,
                step: u64,
                _: usize,
                _: &Instr,
                _: &mut Machine,
            ) -> FaultAction {
                if step == self.0 {
                    FaultAction::Skip
                } else {
                    FaultAction::Continue
                }
            }
        }
        let mut sim = Simulator::new(max_program(), 4096);
        // Skipping the conditional branch (step 2) on the "taken" input makes
        // the fall-through MOV overwrite r0 with the smaller value.
        let faulted = sim
            .call_with_faults("max", &[7, 3], 100, &mut SkipAt(2))
            .expect("runs");
        assert_eq!(faulted.return_value, 3, "the fault corrupted the result");
    }

    #[test]
    fn register_bit_flip_fault_changes_the_comparison() {
        struct FlipR0BeforeCmp;
        impl FaultHook for FlipR0BeforeCmp {
            fn before_execute(
                &mut self,
                step: u64,
                _: usize,
                _: &Instr,
                machine: &mut Machine,
            ) -> FaultAction {
                if step == 1 {
                    machine.flip_register_bit(Reg::R0, 31);
                }
                FaultAction::Continue
            }
        }
        let mut sim = Simulator::new(max_program(), 4096);
        let faulted = sim
            .call_with_faults("max", &[7, 3], 100, &mut FlipR0BeforeCmp)
            .expect("runs");
        assert_eq!(faulted.return_value, 7 | (1 << 31));
    }

    #[test]
    fn resume_from_snapshot_matches_the_full_run() {
        use crate::machine::MachineState;

        // Record a snapshot before step 4 of a faulty run of `sum(10)`
        // (program from `loop_with_memory_and_call`), then resume a sibling
        // simulator from it with the same fault hook: identical result,
        // identical step-limit behaviour.
        struct SnapshotAt {
            step: u64,
            state: Option<(MachineState, usize)>,
        }
        impl FaultHook for SnapshotAt {
            fn before_execute(
                &mut self,
                step: u64,
                pc: usize,
                _: &Instr,
                machine: &mut Machine,
            ) -> FaultAction {
                if step == self.step {
                    self.state = Some((machine.snapshot(), pc));
                }
                FaultAction::Continue
            }
        }
        struct SkipAt(u64);
        impl FaultHook for SkipAt {
            fn before_execute(
                &mut self,
                step: u64,
                _: usize,
                _: &Instr,
                _: &mut Machine,
            ) -> FaultAction {
                if step == self.0 {
                    FaultAction::Skip
                } else {
                    FaultAction::Continue
                }
            }
        }

        let mut p = ProgramBuilder::new();
        p.label("sum");
        p.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0,
        });
        p.push(Instr::MovImm {
            rd: Reg::R2,
            imm: 0,
        });
        p.label("loop");
        p.push(Instr::Cmp {
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R0),
        });
        p.push(Instr::BCond {
            cond: Cond::Hs,
            target: Target::label("exit"),
        });
        p.push(Instr::Add {
            rd: Reg::R1,
            rn: Reg::R1,
            op2: Operand2::Reg(Reg::R2),
        });
        p.push(Instr::Add {
            rd: Reg::R2,
            rn: Reg::R2,
            op2: Operand2::Imm(1),
        });
        p.push(Instr::Str {
            rt: Reg::R1,
            rn: Reg::R3,
            offset: 64,
        });
        p.push(Instr::B {
            target: Target::label("loop"),
        });
        p.label("exit");
        p.push(Instr::Mov {
            rd: Reg::R0,
            rm: Reg::R1,
        });
        p.push(Instr::Bx { rm: Reg::Lr });
        let program = p.assemble().expect("assembles");

        // Snapshot the fault-free run before step 9 (mid-loop).
        let mut recorder = Simulator::new(program.clone(), 4096);
        let mut snap = SnapshotAt {
            step: 9,
            state: None,
        };
        let reference = recorder
            .call_with_faults("sum", &[10], 1_000, &mut snap)
            .expect("runs");
        let (state, pc) = snap.state.expect("snapshot taken");

        // A fault at step 20 (after the snapshot): full run vs resumed run.
        let mut full_sim = Simulator::new(program.clone(), 4096);
        let full = full_sim
            .call_with_faults("sum", &[10], 1_000, &mut SkipAt(20))
            .expect("runs");
        let mut resumed_sim = Simulator::new(program.clone(), 4096);
        resumed_sim.machine_mut().restore(&state);
        let resumed = resumed_sim
            .resume_with_faults(pc, 8, 1_000, &mut SkipAt(20))
            .expect("runs");
        assert_eq!(resumed.return_value, full.return_value);
        assert_ne!(full.return_value, reference.return_value, "fault visible");

        // The step limit counts total dynamic steps, resumed or not (the
        // skipped ADD at step 17 does not shorten the run, so both paths
        // exhaust the 30-step budget).
        let mut limited_full = Simulator::new(program.clone(), 4096);
        let full_err = limited_full.call_with_faults("sum", &[10], 30, &mut SkipAt(17));
        let mut limited_resumed = Simulator::new(program, 4096);
        limited_resumed.machine_mut().restore(&state);
        let resumed_err = limited_resumed.resume_with_faults(pc, 8, 30, &mut SkipAt(17));
        match (full_err, resumed_err) {
            (
                Err(SimError::StepLimitExceeded { limit: a }),
                Err(SimError::StepLimitExceeded { limit: b }),
            ) => assert_eq!(a, b),
            other => panic!("expected matching step-limit errors, got {other:?}"),
        }
    }

    #[test]
    fn segmented_run_is_bit_identical_to_one_call() {
        struct SkipAt(u64);
        impl FaultHook for SkipAt {
            fn before_execute(
                &mut self,
                step: u64,
                _: usize,
                _: &Instr,
                _: &mut Machine,
            ) -> FaultAction {
                if step == self.0 {
                    FaultAction::Skip
                } else {
                    FaultAction::Continue
                }
            }
        }

        let program = max_program();
        let mut whole = Simulator::new(program.clone(), 4096);
        let one_call = whole
            .call_with_faults("max", &[7, 3], 100, &mut SkipAt(2))
            .expect("runs");

        // Pause after every single step; the stitched run must match exactly.
        let mut segmented = Simulator::new(program.clone(), 4096);
        let mut cursor = segmented.begin_call("max", &[7, 3]).expect("begins");
        let result = loop {
            let pause = cursor.steps_done() + 1;
            match segmented
                .run_segment(cursor, Some(pause), 100, &mut SkipAt(2))
                .expect("runs")
            {
                SegmentEnd::Done(result) => break result,
                SegmentEnd::Paused(next) => cursor = next,
            }
        };
        assert_eq!(result, one_call);

        // A pause boundary past the end never fires: Done comes straight back.
        let mut late = Simulator::new(program.clone(), 4096);
        let cursor = late.begin_call("max", &[7, 3]).expect("begins");
        match late
            .run_segment(cursor, Some(1_000), 100, &mut SkipAt(2))
            .expect("runs")
        {
            SegmentEnd::Done(result) => assert_eq!(result, one_call),
            SegmentEnd::Paused(_) => panic!("pause boundary past the end fired"),
        }

        // Step-limit errors surface identically through segments.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::B {
            target: Target::label("spin"),
        });
        let spin = p.assemble().expect("assembles");
        let mut sim = Simulator::new(spin, 1024);
        let mut cursor = sim.begin_call("spin", &[]).expect("begins");
        let err = loop {
            match sim.run_segment(cursor, Some(cursor.steps_done() + 7), 50, &mut NoFaults) {
                Ok(SegmentEnd::Paused(next)) => cursor = next,
                Ok(SegmentEnd::Done(_)) => panic!("spin cannot finish"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, SimError::StepLimitExceeded { limit: 50 }));
    }

    #[test]
    fn error_paths_are_reported() {
        let mut sim = Simulator::new(max_program(), 4096);
        assert!(matches!(
            sim.call("nope", &[], 10),
            Err(SimError::UnknownEntryPoint { .. })
        ));
        assert!(matches!(
            sim.call("max", &[1, 2, 3, 4, 5], 10),
            Err(SimError::TooManyArguments { .. })
        ));

        // An infinite loop hits the step limit.
        let mut p = ProgramBuilder::new();
        p.label("spin");
        p.push(Instr::B {
            target: Target::label("spin"),
        });
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 1024);
        assert!(matches!(
            sim.call("spin", &[], 100),
            Err(SimError::StepLimitExceeded { .. })
        ));

        // Falling off the end of the program is detected.
        let mut p = ProgramBuilder::new();
        p.label("off_end");
        p.push(Instr::Nop);
        let mut sim = Simulator::new(p.assemble().expect("assembles"), 1024);
        assert!(matches!(
            sim.call("off_end", &[], 10),
            Err(SimError::PcOutOfRange { .. })
        ));
    }
}
