//! The acceptance invariant of the observability layer: tracing is
//! *derived* data. A [`SecurityReport`] is **byte-identical** with a trace
//! sink installed or absent, at any thread count, cold or warm from a
//! persistent store — and the exported Chrome trace covers every
//! instrumented phase of the run that produced it.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use secbranch::campaign::{
    CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip, MatrixExecutor,
};
use secbranch::obs::{self, HistogramSnapshot, TraceSink};
use secbranch::programs::{integer_compare_module, pin_retry_module};
use secbranch::store::GridStore;
use secbranch::{Pipeline, ProtectionVariant, SecurityReport, Session, Workload};

/// The trace sink is process-global state: tests that install one must not
/// overlap, so every test in this file serialises on this lock.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A unique, self-cleaning store directory under the system temp dir (the
/// offline workspace has no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "secbranch-obs-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&dir).expect("temp dir creatable");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        Workload::new("pin retry", pin_retry_module(4, 3), "pin_check", &[]),
    ]
}

fn grid_pipelines() -> Vec<Pipeline> {
    [ProtectionVariant::Unprotected, ProtectionVariant::AnCode]
        .iter()
        .map(|v| {
            Pipeline::for_variant(*v)
                .with_memory_size(1 << 16)
                .with_max_steps(100_000)
        })
        .collect()
}

fn grid_models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(DoubleInstructionSkip {
            max_injections: 300,
            seed: 0x2FA17,
        }),
    ]
}

/// Tracing must never reach the report: with a sink installed, the matrix
/// executor's output stays byte-identical to the untraced sequential
/// reference at 1, 2 and 8 worker threads — both on a cold run and served
/// warm from a persistent store by a fresh session.
#[test]
fn reports_are_byte_identical_with_tracing_enabled_cold_and_warm() {
    let _guard = serial();
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    // The untraced reference, computed before any sink exists.
    let baseline: SecurityReport = Session::new()
        .security_matrix_sequential_with(
            &CampaignRunner::new().with_threads(1),
            &workloads,
            &pipelines,
            &model_refs,
        )
        .expect("sequential matrix runs");
    let baseline_json = baseline.to_json();

    let sink = Arc::new(TraceSink::new());
    obs::install_sink(&sink);

    for threads in [1, 2, 8] {
        let executor = MatrixExecutor::new().with_threads(threads);

        // Cold: every cell simulated under tracing.
        let store = TempDir::new(&format!("identity-{threads}"));
        let grid = Arc::new(GridStore::open(&store.0).expect("store opens"));
        let cold = Session::new()
            .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, Some(&grid))
            .expect("cold matrix runs");
        assert_eq!(
            cold, baseline,
            "{threads} threads cold: structured equality"
        );
        assert_eq!(
            cold.to_json(),
            baseline_json,
            "{threads} threads cold: byte-identical JSON under tracing"
        );

        // Warm: a fresh session serves the same grid from disk, still traced.
        let warm = Session::new()
            .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, Some(&grid))
            .expect("warm matrix runs");
        assert_eq!(warm.stats.cell_misses, 0, "{threads} threads: fully warm");
        assert_eq!(
            warm.to_json(),
            baseline_json,
            "{threads} threads warm: byte-identical JSON under tracing"
        );
    }

    obs::flush_thread();
    obs::uninstall_sink();
    let _ = sink.take_events();
}

/// The exported trace is a well-formed Chrome trace-event document and
/// contains at least one span for every instrumented phase the run went
/// through: artifact build, reference recording, micro-op decode, shard
/// execution, checkpoint fast-forward, spine-snapshot restore, and store
/// writes (cold pass) plus store reads (warm pass).
#[test]
fn trace_export_covers_every_instrumented_phase() {
    let _guard = serial();
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let sink = Arc::new(TraceSink::new());
    obs::install_sink(&sink);

    let store = TempDir::new("phases");
    let grid = Arc::new(GridStore::open(&store.0).expect("store opens"));
    let executor = MatrixExecutor::new().with_threads(2);
    let cold = Session::new()
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, Some(&grid))
        .expect("cold matrix runs");
    assert!(
        cold.stats.snapshot_restores > 0,
        "double-skip restores spines"
    );
    let warm = Session::new()
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, Some(&grid))
        .expect("warm matrix runs");
    assert!(warm.stats.cell_hits > 0, "second pass reads the store");

    obs::flush_thread();
    obs::uninstall_sink();
    let events = sink.take_events();

    for phase in [
        "build",
        "reference",
        "decode",
        "shard",
        "fast_forward",
        "snapshot_restore",
        "store_write",
        "store_read",
    ] {
        assert!(
            events.iter().any(|event| event.label == phase),
            "no {phase:?} span in {} recorded events",
            events.len(),
        );
    }
    for event in &events {
        assert!(
            event.end_micros >= event.start_micros,
            "spans never run backwards"
        );
        assert!(event.id != 0, "span ids are never the reserved parent id");
    }

    // The Chrome export is structurally sound: one complete ("ph":"X")
    // event per span, thread-name metadata, and balanced JSON framing.
    let json = obs::chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        events.len(),
        "every span exports exactly one complete event"
    );
    assert!(json.contains("\"ph\":\"M\""), "thread metadata is present");
    assert!(json.contains("\"name\":\"shard\""));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
}

/// Tracing compiles to a no-op when no sink is attached: spans opened
/// outside an installed sink record nothing, and a later sink sees none of
/// them.
#[test]
fn spans_without_a_sink_record_nothing() {
    let _guard = serial();
    {
        let _span = obs::span("build");
        let _detailed = obs::span_with("shard", || unreachable!("detail closure must not run"));
    }
    obs::flush_thread();

    let sink = Arc::new(TraceSink::new());
    obs::install_sink(&sink);
    obs::uninstall_sink();
    obs::flush_thread();
    assert!(sink.take_events().is_empty());
}

/// Histogram merging is associative across shards: folding per-shard
/// compute-time histograms in any grouping yields the same snapshot as one
/// histogram over all samples — the property that lets the daemon merge
/// per-model shard histograms in arrival order.
#[test]
fn shard_histograms_merge_associatively() {
    let _guard = serial();
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let report = Session::new()
        .security_matrix_with(
            &MatrixExecutor::new().with_threads(2),
            &workloads,
            &pipelines,
            &model_refs,
            None,
        )
        .expect("matrix runs");
    let samples = &report.stats.cell_compute_micros;
    assert!(samples.len() >= 3, "enough cells to shard");

    // Split the per-cell samples into three "shards" and merge them in two
    // different groupings.
    let third = samples.len() / 3;
    let (a, rest) = samples.split_at(third.max(1));
    let (b, c) = rest.split_at(third.max(1));
    let ha = HistogramSnapshot::from_samples(a);
    let hb = HistogramSnapshot::from_samples(b);
    let hc = HistogramSnapshot::from_samples(c);

    let left_first = ha.merge(&hb).merge(&hc);
    let right_first = ha.merge(&hb.merge(&hc));
    let all_at_once = HistogramSnapshot::from_samples(samples);
    assert_eq!(left_first.to_json(), right_first.to_json());
    assert_eq!(left_first.to_json(), all_at_once.to_json());
    assert_eq!(left_first.quantile(0.95), all_at_once.quantile(0.95));
    assert_eq!(report, report.clone(), "stats never affect report equality");
}
