//! The acceptance invariant of the matrix executor: one global fault-space
//! scheduler over the whole security matrix produces **byte-identical**
//! reports to the sequential per-cell path at any thread count and shard
//! size, while recording each (artifact, entry, args) reference trace
//! exactly once per matrix.

use secbranch::campaign::{
    BranchInversion, CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip,
    MatrixExecutor, RegisterBitFlip,
};
use secbranch::programs::{integer_compare_module, password_check_module};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        Workload::new("password", password_check_module(8), "password_check", &[]),
    ]
}

fn grid_pipelines() -> Vec<Pipeline> {
    [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::AnCode,
    ]
    .iter()
    .map(|v| {
        Pipeline::for_variant(*v)
            .with_memory_size(1 << 16)
            .with_max_steps(100_000)
    })
    .collect()
}

fn grid_models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(BranchInversion),
        Box::new(RegisterBitFlip {
            trials: 120,
            seed: 0xC0FFEE,
        }),
    ]
}

/// The tentpole invariant: executor output equals the sequential reference
/// implementation — as structured reports *and* as serialised bytes — at 1,
/// 2 and 8 worker threads, including a deliberately awkward shard size.
///
/// Both paths run in one session so they attack the *same* compiled
/// artifacts (the build cache guarantees that); the comparison then
/// isolates exactly what this PR changes — scheduling, simulator reuse,
/// trace memoisation and checkpoint fast-forward — with compilation held
/// fixed.
#[test]
fn executor_is_byte_identical_to_the_sequential_path_at_any_thread_count() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let mut session = Session::new();
    let sequential = session
        .security_matrix_sequential_with(
            &CampaignRunner::new().with_threads(1),
            &workloads,
            &pipelines,
            &model_refs,
        )
        .expect("sequential matrix runs");
    assert_eq!(sequential.cells.len(), 18, "2 × 3 × 3 grid");

    for threads in [1, 2, 8] {
        let executor = MatrixExecutor::new()
            .with_threads(threads)
            .with_shard_size(7);
        let report = session
            .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
            .expect("matrix runs");
        assert_eq!(report, sequential, "{threads} threads: structured equality");
        assert_eq!(
            report.to_json(),
            sequential.to_json(),
            "{threads} threads: byte-identical JSON"
        );
        assert_eq!(report.stats.threads, threads);
    }
    assert_eq!(
        session.cache_misses(),
        6,
        "all four matrix runs shared one compilation per artifact"
    );
}

/// The PR 3 invariant compared runs over *one* session's artifacts because
/// compilation was not yet bit-deterministic. With ordered maps in
/// `codegen`/`passes` the invariant extends across builds: the executor in
/// one session is byte-identical to the sequential path over artifacts
/// compiled *independently* in another session.
#[test]
fn executor_is_byte_identical_to_the_sequential_path_across_sessions() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let mut sequential_session = Session::new();
    let sequential = sequential_session
        .security_matrix_sequential_with(
            &CampaignRunner::new().with_threads(1),
            &workloads,
            &pipelines,
            &model_refs,
        )
        .expect("sequential matrix runs");

    let mut executor_session = Session::new();
    let report = executor_session
        .security_matrix_with(
            &MatrixExecutor::new().with_threads(4).with_shard_size(7),
            &workloads,
            &pipelines,
            &model_refs,
            None,
        )
        .expect("matrix runs");
    assert_eq!(
        executor_session.cache_misses(),
        6,
        "the executor session compiled its own artifacts"
    );
    assert_eq!(report, sequential, "cross-session structured equality");
    assert_eq!(
        report.to_json(),
        sequential.to_json(),
        "cross-session byte-identical JSON"
    );
}

/// The trace store records each (artifact, entry, args) reference exactly
/// once per matrix run — and not at all on a repeat run in the same
/// session.
#[test]
fn trace_store_records_each_artifact_reference_exactly_once() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let mut session = Session::new();
    let executor = MatrixExecutor::new().with_threads(2);
    let report = session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("matrix runs");

    // 2 workloads × 3 pipelines = 6 distinct artifacts; 3 models each.
    assert_eq!(report.stats.trace_misses, 6, "one recording per artifact");
    assert_eq!(report.stats.trace_hits, 12, "the other models reuse it");
    assert_eq!(session.trace_store().misses(), 6);
    assert_eq!(session.trace_store().hits(), 12);
    assert_eq!(session.trace_store().len(), 6);
    assert_eq!(report.stats.cell_compute_micros.len(), 18);

    // The same matrix again in the same session: all hits, zero recordings.
    let again = session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("matrix runs");
    assert_eq!(again.stats.trace_misses, 0);
    assert_eq!(again.stats.trace_hits, 18);
    assert_eq!(session.trace_store().misses(), 6, "nothing re-recorded");
    assert_eq!(again, report, "memoised matrix is identical");
}

/// The differential-resume tentpole, asserted through the `MatrixStats`
/// counters it introduced: a double-skip cell executes grouped fault
/// points by restoring a first-fault machine snapshot instead of
/// re-running the shared prefix, so the matrix must report snapshot
/// restores and a nonzero count of reference-suffix steps it never
/// re-executed. Fails against pre-fan-out code, where every second-fault
/// candidate replayed from the entry point (both counters zero).
#[test]
fn double_skip_fans_out_from_first_fault_snapshots() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models: Vec<Box<dyn FaultModel>> = vec![Box::new(DoubleInstructionSkip::default())];
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let mut session = Session::new();
    let executor = MatrixExecutor::new().with_threads(2);
    let report = session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("matrix runs");

    assert!(
        report.stats.snapshot_restores > 0,
        "grouped double-skip points must resume from first-fault snapshots"
    );
    assert!(
        report.stats.suffix_steps_saved > 0,
        "fan-out must eliminate re-executed prefix steps"
    );
}

/// The micro-op tentpole, asserted through the decode counters it added to
/// `MatrixStats`: every distinct program in the matrix is pre-decoded into
/// micro-ops exactly once (shared through its `Arc<Program>` across all
/// cells, threads and fault models), and the decode work is visible in the
/// stats without ever entering the report body — `SecurityReport` equality
/// and JSON ignore stats, so the 1/2/8-thread byte-identity test above
/// holds unchanged. Fails against pre-micro-op code, where no decode
/// happened and the counters did not exist.
#[test]
fn matrix_decodes_each_program_once_and_reports_the_cost() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let mut session = Session::new();
    let executor = MatrixExecutor::new().with_threads(2);
    let report = session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("matrix runs");

    // 2 workloads × 3 pipelines = 6 distinct programs, decoded once each
    // regardless of the 3 models (18 cells) that execute them.
    assert_eq!(report.stats.decoded_programs, 6, "one decode per program");
    assert!(
        report.stats.decoded_uops > 0,
        "decoded programs contain micro-ops"
    );

    // A repeat run reuses the per-program decode cache: the same programs
    // are counted (they are still the matrix's working set) but the uop
    // count is identical — nothing was re-decoded into a different shape.
    let again = session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("matrix runs");
    assert_eq!(again.stats.decoded_programs, 6);
    assert_eq!(again.stats.decoded_uops, report.stats.decoded_uops);
    assert_eq!(again, report, "decode stats never leak into the report");
}

/// Builds are batched before any campaign starts, through the session's
/// ordinary build cache: running the performance matrix first means the
/// security matrix compiles nothing.
#[test]
fn security_matrix_shares_the_session_build_cache() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let mut session = Session::new();
    session
        .run_matrix(&workloads, &pipelines)
        .expect("performance matrix runs");
    assert_eq!(session.cache_misses(), 6);
    session
        .security_matrix(&workloads, &pipelines, &model_refs)
        .expect("security matrix runs");
    assert_eq!(
        session.cache_misses(),
        6,
        "security matrix recompiled nothing"
    );
    assert_eq!(session.cache_hits(), 6, "six artifacts served from cache");
}

/// The semantic headline of the paper survives the scheduler change:
/// branch inversion escapes on the unprotected variant and is fully
/// detected on the prototype.
#[test]
fn matrix_reproduces_the_branch_inversion_result() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();
    let report = Session::new()
        .security_matrix(&workloads, &pipelines, &model_refs)
        .expect("matrix runs");

    for workload in &report.workloads {
        let unprotected = report
            .cell(workload, "unprotected", "branch-invert")
            .expect("cell");
        assert!(
            unprotected.report.counts.wrong_result_undetected > 0,
            "{workload}: inverted branches must escape unprotected"
        );
        let prototype = report
            .cell(workload, "prototype", "branch-invert")
            .expect("cell");
        assert_eq!(
            prototype.report.counts.wrong_result_undetected, 0,
            "{workload}: the encoded branch detects every inversion"
        );
    }
}
