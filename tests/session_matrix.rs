//! The acceptance scenario of the `Pipeline`/`Session` redesign: a single
//! `Session` call reproduces the Table III matrix with each module compiled
//! exactly once per pipeline fingerprint, and artifacts feed repeated
//! executions and fault campaigns without recompiling.

use secbranch::programs::{
    bootloader_module, integer_compare_module, memcmp_module, password_check_module, BootImage,
    BOOT_OK, GRANT,
};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn table_three_workloads() -> Vec<Workload> {
    let image = BootImage::generate(512, 7);
    vec![
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 1234],
        ),
        Workload::new("memcmp", memcmp_module(32), "memcmp_bench", &[]),
        Workload::new("password", password_check_module(8), "password_check", &[]),
        Workload::new("bootloader", bootloader_module(&image), "bootloader", &[]),
    ]
}

/// One `run_matrix` call covers 3 variants × 4 workloads with exactly one
/// compilation per cell, and re-running the matrix (or measuring again
/// through the same session) compiles nothing.
#[test]
fn table_three_matrix_compiles_each_module_once_per_fingerprint() {
    let workloads = table_three_workloads();
    let pipelines: Vec<Pipeline> = ProtectionVariant::TABLE_THREE
        .iter()
        .map(|v| Pipeline::for_variant(*v))
        .collect();

    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");

    assert_eq!(report.cells.len(), 12);
    assert_eq!(report.workloads.len(), 4);
    assert_eq!(
        report.pipelines,
        vec!["cfi", "duplication(x6)", "prototype"]
    );
    assert_eq!(
        session.builds(),
        12,
        "each module × fingerprint compiled exactly once"
    );
    assert_eq!(session.cache_hits(), 0);
    assert_eq!(
        session.cache_misses(),
        session.builds(),
        "misses and builds are the same counter seen from both sides"
    );

    // Semantic spot checks across the matrix.
    for pipeline in &report.pipelines {
        assert_eq!(
            report
                .cell("integer compare", pipeline)
                .expect("cell")
                .measurement
                .result
                .return_value,
            1
        );
        assert_eq!(
            report
                .cell("password", pipeline)
                .expect("cell")
                .measurement
                .result
                .return_value,
            GRANT
        );
        assert_eq!(
            report
                .cell("bootloader", pipeline)
                .expect("cell")
                .measurement
                .result
                .return_value,
            BOOT_OK
        );
    }

    // The full matrix again: 12 cache hits, zero new builds.
    let again = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");
    assert_eq!(session.builds(), 12, "second matrix run compiles nothing");
    assert_eq!(session.cache_misses(), 12);
    assert_eq!(session.cache_hits(), 12);
    assert_eq!(report, again, "cached matrix is bit-identical");
}

/// Pipelines with equal fingerprints share one cache entry even when their
/// labels differ; pipelines with different configurations do not.
#[test]
fn cache_is_keyed_by_fingerprint_not_by_label() {
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[5, 5],
    )];
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::CfiOnly),
        Pipeline::for_variant(ProtectionVariant::CfiOnly).with_label("cfi again"),
        Pipeline::for_variant(ProtectionVariant::AnCode),
    ];

    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");
    assert_eq!(report.cells.len(), 3);
    assert_eq!(
        session.builds(),
        2,
        "identical fingerprints share one compilation"
    );
    assert_eq!(session.cache_misses(), 2);
    assert_eq!(session.cache_hits(), 1);
    // Both labels appear in the report even though one build served them.
    assert!(report.cell("integer compare", "cfi").is_some());
    assert!(report.cell("integer compare", "cfi again").is_some());
}

/// Two pipelines with the *same* label get disambiguated in the report, so
/// label-keyed cell lookups never silently return the wrong column.
#[test]
fn duplicate_labels_are_disambiguated_in_the_report() {
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[5, 5],
    )];
    // `prototype` and its alias parse to the same variant; passing both on
    // the table3 CLI produces two identically-labelled pipelines.
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::CfiOnly),
        Pipeline::for_variant(ProtectionVariant::AnCode),
        Pipeline::for_variant(ProtectionVariant::AnCode),
    ];
    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");
    assert_eq!(report.pipelines, vec!["cfi", "prototype", "prototype (2)"]);
    let first = report.cell("integer compare", "prototype").expect("cell");
    let second = report
        .cell("integer compare", "prototype (2)")
        .expect("cell");
    assert!(first.size_overhead_percent.is_some());
    assert_eq!(
        first.measurement.result, second.measurement.result,
        "same fingerprint, same artifact, same numbers"
    );
    assert_eq!(session.builds(), 2, "duplicates still share the cache");
}

/// The cache keys on module *content*, not just the caller-chosen name: two
/// different modules sharing a name are compiled (and measured) separately.
#[test]
fn cache_distinguishes_same_named_modules_by_content() {
    let pipelines = [Pipeline::for_variant(ProtectionVariant::CfiOnly)];
    let small = Workload::new("memcmp", memcmp_module(16), "memcmp_bench", &[]);
    let large = Workload::new("memcmp", memcmp_module(64), "memcmp_bench", &[]);

    let mut session = Session::new();
    let a = session.measure(&small, &pipelines[0]).expect("runs");
    let b = session.measure(&large, &pipelines[0]).expect("runs");
    assert_eq!(
        session.builds(),
        2,
        "same name, different content: two builds"
    );
    assert!(
        b.result.cycles > a.result.cycles,
        "the 64-element memcmp must not be served the 16-element artifact"
    );
    // Same name AND same content still hits the cache.
    session.measure(&small, &pipelines[0]).expect("runs");
    assert_eq!(session.builds(), 2);
    assert_eq!(session.cache_misses(), 2);
    assert_eq!(session.cache_hits(), 1);

    // In a matrix, the duplicate workload name is disambiguated so both
    // rows stay addressable.
    let report = session
        .run_matrix(&[small, large], &pipelines)
        .expect("matrix runs");
    assert_eq!(report.workloads, vec!["memcmp", "memcmp (2)"]);
    let small_cell = report.cell("memcmp", "cfi").expect("cell");
    let large_cell = report.cell("memcmp (2)", "cfi").expect("cell");
    assert!(
        large_cell.measurement.result.cycles > small_cell.measurement.result.cycles,
        "each row reports its own module"
    );
}

/// Label disambiguation never collides with a suffix a pipeline carries as
/// its literal label.
#[test]
fn label_disambiguation_respects_literal_suffix_labels() {
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[5, 5],
    )];
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::CfiOnly).with_label("x"),
        Pipeline::for_variant(ProtectionVariant::AnCode).with_label("x"),
        Pipeline::for_variant(ProtectionVariant::Duplication(6)).with_label("x (2)"),
    ];
    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");
    assert_eq!(report.pipelines, vec!["x", "x (3)", "x (2)"]);
    // Every column resolves to its own cell.
    let sizes: Vec<u32> = report
        .pipelines
        .iter()
        .map(|p| {
            report
                .cell("integer compare", p)
                .expect("cell")
                .measurement
                .code_size_bytes
        })
        .collect();
    assert_eq!(sizes.len(), 3);
    assert_ne!(sizes[0], sizes[1], "cfi vs prototype differ");
    assert_ne!(sizes[1], sizes[2], "prototype vs duplication differ");
}

/// The structured report serialises to JSON with every cell present.
#[test]
fn report_serialises_to_json() {
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[9, 9],
    )];
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::CfiOnly),
        Pipeline::for_variant(ProtectionVariant::AnCode),
    ];
    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");

    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"workloads\":[\"integer compare\"]"));
    assert!(json.contains("\"pipelines\":[\"cfi\",\"prototype\"]"));
    assert!(json.contains("\"cfi_violations\":0"));
    assert!(
        json.contains("\"size_overhead_percent\":null"),
        "baseline cell"
    );
    assert_eq!(
        json.matches("\"workload\":").count(),
        2,
        "one object per cell"
    );

    let table = report.render_table();
    assert!(table.contains("integer compare"));
    assert!(table.contains("size/B"));
    assert!(table.contains("cycles"));
}
