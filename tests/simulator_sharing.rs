//! The `Arc`-sharing contract of `CompiledModule::simulator`: building many
//! simulators from one artifact shares the immutable program instead of
//! deep-cloning it, without any observable coupling between siblings.

use std::sync::Arc;

use secbranch::programs::{integer_compare_module, password_check_module};
use secbranch::{Pipeline, ProtectionVariant};

/// Sibling simulators literally share one program allocation.
#[test]
fn simulators_share_the_program_allocation() {
    let artifact = Pipeline::for_variant(ProtectionVariant::AnCode)
        .build(&integer_compare_module())
        .expect("builds");
    let a = artifact.simulator();
    let b = artifact.simulator();
    assert!(
        Arc::ptr_eq(a.shared_program(), b.shared_program()),
        "two simulators from one artifact must share the program Arc"
    );
    assert!(
        Arc::ptr_eq(a.shared_program(), &artifact.compiled().program),
        "the simulators share the artifact's own compilation"
    );
}

/// N simulators built from one artifact all produce the `run`/`measure`
/// results of a freshly built artifact — sharing changes the cost, not the
/// observable behaviour.
#[test]
fn shared_simulators_reproduce_run_and_measure_results() {
    let module = integer_compare_module();
    let pipeline = Pipeline::for_variant(ProtectionVariant::AnCode);
    let artifact = pipeline.build(&module).expect("builds");

    let expected = artifact.run("integer_compare", &[500, 501]).expect("runs");
    for _ in 0..16 {
        let got = artifact.run("integer_compare", &[500, 501]).expect("runs");
        assert_eq!(got, expected);
    }
    let m1 = artifact.measure("integer_compare", &[7, 7]).expect("runs");
    let m2 = artifact.measure("integer_compare", &[7, 7]).expect("runs");
    assert_eq!(m1, m2);

    // A second, independently built artifact of the same pipeline agrees.
    let rebuilt = Pipeline::for_variant(ProtectionVariant::AnCode)
        .build(&module)
        .expect("builds");
    assert_eq!(
        rebuilt.run("integer_compare", &[500, 501]).expect("runs"),
        expected
    );
}

/// Mutations through one simulator's machine are invisible to a sibling:
/// only the *code* is shared, all mutable state is per-simulator.
#[test]
fn machine_mutations_do_not_leak_between_siblings() {
    let artifact = Pipeline::for_variant(ProtectionVariant::AnCode)
        .build(&password_check_module(8))
        .expect("builds");

    let mut tampered = artifact.simulator();
    let sibling = artifact.simulator();

    // Corrupt registers and the globals image through one simulator...
    tampered
        .machine_mut()
        .set_reg(secbranch::armv7m::Reg::R4, 0xDEAD_BEEF);
    let global_addr = artifact
        .compiled()
        .global_image
        .first()
        .map(|(addr, _)| *addr)
        .expect("password check has globals");
    tampered.machine_mut().write_bytes(global_addr, &[0xFF; 4]);

    // ...the sibling (created before the tampering) is unaffected...
    assert_eq!(sibling.machine().reg(secbranch::armv7m::Reg::R4), 0);
    assert_ne!(sibling.machine().read_bytes(global_addr, 4), &[0xFF; 4]);

    // ...and so is a fresh one created afterwards: the shared globals image
    // itself cannot be written through a simulator.
    let fresh = artifact.simulator();
    assert_ne!(fresh.machine().read_bytes(global_addr, 4), &[0xFF; 4]);
    assert_eq!(
        fresh.machine().read_bytes(global_addr, 4),
        sibling.machine().read_bytes(global_addr, 4)
    );

    // The tampered simulator still runs (on its corrupted state) while the
    // fresh one produces the reference result.
    let max_steps = artifact.sim().max_steps;
    let mut fresh = fresh;
    let clean = fresh
        .call("password_check", &[], max_steps)
        .expect("runs clean");
    assert_eq!(
        clean.return_value,
        artifact
            .run("password_check", &[])
            .expect("runs")
            .return_value
    );
}
