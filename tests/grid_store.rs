//! The acceptance invariant of the persistent grid store: a
//! [`SecurityReport`] is **byte-identical** whether the store is disabled,
//! cold or warm — including across two independent sessions sharing one
//! store directory — and a warm run records zero new reference traces and
//! simulates zero injections.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use secbranch::campaign::{
    CampaignRunner, FaultModel, InstructionSkip, MatrixExecutor, RegisterBitFlip,
};
use secbranch::programs::{crc32_table_module, integer_compare_module, pin_retry_module};
use secbranch::store::GridStore;
use secbranch::{Pipeline, ProtectionVariant, SecurityReport, Session, Workload};

/// A unique, self-cleaning store directory under the system temp dir (the
/// offline workspace has no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "secbranch-grid-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&dir).expect("temp dir creatable");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[77, 77],
        ),
        Workload::new("pin retry", pin_retry_module(4, 3), "pin_check", &[]),
    ]
}

fn grid_pipelines() -> Vec<Pipeline> {
    [ProtectionVariant::Unprotected, ProtectionVariant::AnCode]
        .iter()
        .map(|v| {
            Pipeline::for_variant(*v)
                .with_memory_size(1 << 16)
                .with_max_steps(100_000)
        })
        .collect()
}

fn grid_models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(RegisterBitFlip {
            trials: 80,
            seed: 0xBEEF,
        }),
    ]
}

fn assert_byte_identical(a: &SecurityReport, b: &SecurityReport, label: &str) {
    assert_eq!(a, b, "{label}: structured equality");
    assert_eq!(a.to_json(), b.to_json(), "{label}: byte-identical JSON");
}

/// The headline acceptance: disabled == cold == warm, with the cold run
/// filling the store and the warm run — an *independent* session over an
/// independently opened handle to the same directory — recording zero new
/// reference traces and computing zero cells.
#[test]
fn security_report_is_byte_identical_disabled_cold_and_warm() {
    let dir = TempDir::new("acceptance");
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();
    let executor = MatrixExecutor::new().with_threads(2).with_shard_size(7);
    let cell_count = workloads.len() * pipelines.len() * models.len();
    let artifact_count = (workloads.len() * pipelines.len()) as u64;

    // Store disabled.
    let disabled = Session::new()
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("disabled run");

    // Cold: an empty store directory fills up but must not change a byte.
    let grid = Arc::new(GridStore::open(&dir.0).expect("opens"));
    let mut cold_session = Session::new();
    let cold = cold_session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, Some(&grid))
        .expect("cold run");
    assert_byte_identical(&disabled, &cold, "cold vs disabled");
    assert_eq!(cold.stats.cell_hits, 0, "nothing persisted yet");
    assert_eq!(cold.stats.cell_misses, cell_count as u64);
    assert_eq!(cold.stats.trace_misses, artifact_count);
    let scan = grid.scan().expect("scans");
    assert_eq!(scan.cell_records, cell_count as u64, "every cell persisted");
    assert_eq!(scan.trace_records, artifact_count, "every trace persisted");

    // Warm: a fully independent session *and* store handle on the same
    // directory — the cross-process shape (fresh build cache, fresh trace
    // store, fresh GridStore).
    let warm_grid = Arc::new(GridStore::open(&dir.0).expect("reopens"));
    let mut warm_session = Session::new();
    let warm = warm_session
        .security_matrix_with(
            &executor,
            &workloads,
            &pipelines,
            &model_refs,
            Some(&warm_grid),
        )
        .expect("warm run");
    assert_byte_identical(&disabled, &warm, "warm vs disabled");
    assert_eq!(
        warm.stats.cell_hits, cell_count as u64,
        "every cell served from disk"
    );
    assert_eq!(warm.stats.cell_misses, 0, "zero simulation");
    assert_eq!(warm.stats.trace_misses, 0, "zero new reference traces");
    assert_eq!(
        warm_session.trace_store().misses(),
        0,
        "the warm session never recorded"
    );
    assert_eq!(
        warm.stats.cell_compute_micros.iter().sum::<u64>(),
        0,
        "no injection compute attributed anywhere"
    );
}

/// The trace spill path alone (cells removed from the store): a warm run
/// loads every reference from disk instead of re-recording, and the report
/// is still byte-identical.
#[test]
fn traces_warm_start_from_disk_when_cells_are_absent() {
    let dir = TempDir::new("traces-only");
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();
    let executor = MatrixExecutor::new().with_threads(2);
    let artifact_count = (workloads.len() * pipelines.len()) as u64;

    let grid = Arc::new(GridStore::open(&dir.0).expect("opens"));
    let mut cold_session = Session::new();
    let cold = cold_session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, Some(&grid))
        .expect("cold run");

    // Drop the persisted cells, keep the traces.
    fs::remove_dir_all(dir.0.join("cells")).expect("removable");
    fs::create_dir_all(dir.0.join("cells")).expect("recreatable");

    let warm_grid = Arc::new(GridStore::open(&dir.0).expect("reopens"));
    let mut warm_session = Session::new();
    let warm = warm_session
        .security_matrix_with(
            &executor,
            &workloads,
            &pipelines,
            &model_refs,
            Some(&warm_grid),
        )
        .expect("trace-warm run");
    assert_byte_identical(&cold, &warm, "trace-warm vs cold");
    assert_eq!(warm.stats.cell_hits, 0, "cells were removed");
    assert_eq!(
        warm.stats.trace_disk_hits, artifact_count,
        "every reference loaded from disk"
    );
    assert_eq!(warm.stats.trace_misses, 0, "zero new recordings");
    assert_eq!(warm_session.trace_store().disk_hits(), artifact_count);
}

/// The in-memory checkpoint byte budget is output-invariant: a session
/// forced to evict every resume checkpoint produces the identical report,
/// only slower (full prefix re-execution instead of fast-forward).
#[test]
fn checkpoint_budget_is_output_invariant() {
    let workloads = grid_workloads();
    let pipelines = grid_pipelines();
    let models = grid_models();
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();
    let executor = MatrixExecutor::new().with_threads(2).with_shard_size(5);

    let unbounded = Session::new()
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("unbounded run");
    assert_eq!(unbounded.stats.store_checkpoint_evictions, 0);
    assert!(
        unbounded.stats.store_checkpoint_bytes > 0,
        "checkpoints are retained by default"
    );

    let mut bounded_session = Session::new();
    bounded_session.set_trace_checkpoint_budget(Some(0));
    let bounded = bounded_session
        .security_matrix_with(&executor, &workloads, &pipelines, &model_refs, None)
        .expect("bounded run");
    assert_byte_identical(&unbounded, &bounded, "zero budget vs unbounded");
    assert_eq!(bounded.stats.store_checkpoint_bytes, 0, "budget enforced");
    assert!(
        bounded.stats.store_checkpoint_evictions >= (workloads.len() * pipelines.len()) as u64,
        "every recording was stripped"
    );
}

/// `Artifact::campaign_with_store` with a grid: the first campaign computes
/// and persists, a second artifact compiled independently serves the cell
/// from disk — byte-identical, without touching a simulator.
#[test]
fn artifact_campaigns_persist_and_reload_cells() {
    let dir = TempDir::new("artifact");
    let module = crc32_table_module(16);
    let pipeline = Pipeline::for_variant(ProtectionVariant::AnCode)
        .with_memory_size(1 << 16)
        .with_max_steps(200_000);
    let model = RegisterBitFlip {
        trials: 60,
        seed: 0x5EED,
    };
    let runner = CampaignRunner::new().with_threads(2);

    let grid = Arc::new(GridStore::open(&dir.0).expect("opens"));
    let artifact = pipeline.build(&module).expect("builds");
    let store = secbranch::campaign::TraceStore::new();
    let first = artifact
        .campaign_with_store(&runner, &store, "crc32_check", &[], &model, Some(&grid))
        .expect("computes");
    assert_eq!(grid.stats().cell_misses, 1, "first probe missed");

    // An independently compiled artifact (bit-deterministic, so the same
    // fingerprint) over a freshly opened store handle.
    let again = pipeline.build(&module).expect("rebuilds");
    let warm_grid = Arc::new(GridStore::open(&dir.0).expect("reopens"));
    let warm_store = secbranch::campaign::TraceStore::new();
    let reloaded = again
        .campaign_with_store(
            &runner,
            &warm_store,
            "crc32_check",
            &[],
            &model,
            Some(&warm_grid),
        )
        .expect("reloads");
    assert_eq!(first, reloaded, "structured equality");
    assert_eq!(first.to_json(), reloaded.to_json(), "byte-identical JSON");
    assert_eq!(warm_grid.stats().cell_hits, 1, "served from disk");
    assert!(
        warm_store.is_empty(),
        "no reference was recorded or loaded for the warm campaign"
    );

    // A different model configuration is a different cell: computed fresh.
    let other = RegisterBitFlip {
        trials: 60,
        seed: 0x0BAD,
    };
    let fresh = again
        .campaign_with_store(
            &runner,
            &warm_store,
            "crc32_check",
            &[],
            &other,
            Some(&warm_grid),
        )
        .expect("computes the other configuration");
    assert_ne!(
        first.to_json(),
        fresh.to_json(),
        "different seeds sample different fault spaces"
    );
}
