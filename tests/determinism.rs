//! The bit-deterministic-compilation acceptance criteria: compiling the
//! same module through the same pipeline in two *independent* sessions
//! (fresh builds, fresh hash containers) yields identical artifact
//! fingerprints, identical rendered program text and byte-identical
//! reports.
//!
//! Before the ordered-map/sorted-iteration fix in `codegen`/`passes`, two
//! builds of the same (module, pipeline) could emit semantically-equal
//! programs with different stack-slot offsets, because shadow-local
//! allocation in the Loop Decoupler rode on `HashSet` iteration order. Every
//! test below repeats its comparison across fresh builds, so an
//! order-dependence regression fails with overwhelming probability instead
//! of flaking.

use secbranch::campaign::{BranchInversion, FaultModel, InstructionSkip, MatrixExecutor};
use secbranch::programs::{integer_compare_module, memcmp_module, password_check_module};
use secbranch::{Pipeline, ProtectionVariant, Session, Workload};

fn variant_pipelines() -> Vec<Pipeline> {
    [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ]
    .iter()
    .map(|v| {
        Pipeline::for_variant(*v)
            .with_memory_size(1 << 16)
            .with_max_steps(100_000)
    })
    .collect()
}

/// `memcmp` drives the Loop Decoupler (its loop counter feeds both the
/// protected trip-count comparison and the element addressing), which is
/// exactly where the historical nondeterminism lived.
fn determinism_workloads() -> Vec<Workload> {
    vec![
        Workload::new(
            "integer compare",
            integer_compare_module(),
            "integer_compare",
            &[1234, 4321],
        ),
        Workload::new("memcmp", memcmp_module(16), "memcmp_bench", &[]),
        Workload::new("password", password_check_module(8), "password_check", &[]),
    ]
}

/// Two separate `Session`s (fresh builds of everything) produce artifacts
/// with identical fingerprints, identical compiled programs and identical
/// rendered listings — for every workload under every variant, repeatedly.
#[test]
fn independent_sessions_build_bit_identical_artifacts() {
    let workloads = determinism_workloads();
    let pipelines = variant_pipelines();
    for round in 0..4 {
        let mut first = Session::new();
        let mut second = Session::new();
        for workload in &workloads {
            for pipeline in &pipelines {
                let a = first
                    .artifact(&workload.name, &workload.module, pipeline)
                    .expect("builds");
                let b = second
                    .artifact(&workload.name, &workload.module, pipeline)
                    .expect("builds");
                let context = format!(
                    "round {round}, workload {:?}, pipeline {:?}",
                    workload.name,
                    pipeline.label()
                );
                assert_eq!(
                    a.artifact_fingerprint(),
                    b.artifact_fingerprint(),
                    "{context}: fingerprints"
                );
                assert_eq!(a.provenance(), b.provenance(), "{context}: provenance");
                assert_eq!(
                    a.compiled().program,
                    b.compiled().program,
                    "{context}: instruction-for-instruction equality"
                );
                assert_eq!(
                    a.compiled().global_addresses,
                    b.compiled().global_addresses,
                    "{context}: global layout"
                );
                assert_eq!(
                    a.compiled().function_sizes,
                    b.compiled().function_sizes,
                    "{context}: function sizes"
                );
                assert_eq!(a.disassemble(), b.disassemble(), "{context}: listing text");
            }
        }
    }
}

/// The matrix byte-identical invariant across *sessions*, not just across
/// thread counts: a security matrix over artifacts compiled in one session
/// equals — as structured reports and as serialised bytes — the same matrix
/// over artifacts compiled in a different session, even at different worker
/// counts.
#[test]
fn security_matrix_is_byte_identical_across_independent_sessions() {
    let workloads = determinism_workloads();
    let pipelines = variant_pipelines();
    let models: Vec<Box<dyn FaultModel>> =
        vec![Box::new(InstructionSkip), Box::new(BranchInversion)];
    let model_refs: Vec<&dyn FaultModel> = models.iter().map(AsRef::as_ref).collect();

    let reference = Session::new()
        .security_matrix_with(
            &MatrixExecutor::new().with_threads(1),
            &workloads,
            &pipelines,
            &model_refs,
            None,
        )
        .expect("matrix runs");
    for threads in [2, 4] {
        let mut fresh_session = Session::new();
        let report = fresh_session
            .security_matrix_with(
                &MatrixExecutor::new().with_threads(threads),
                &workloads,
                &pipelines,
                &model_refs,
                None,
            )
            .expect("matrix runs");
        assert_eq!(
            fresh_session.cache_misses(),
            (workloads.len() * pipelines.len()) as u64,
            "the fresh session really recompiled every artifact"
        );
        assert_eq!(report, reference, "{threads} threads: structured equality");
        assert_eq!(
            report.to_json(),
            reference.to_json(),
            "{threads} threads: byte-identical JSON across sessions"
        );
        assert_eq!(
            report.render_table(),
            reference.render_table(),
            "{threads} threads: identical rendered table"
        );
    }
}

/// The performance matrix (sizes, cycles, provenance records) serialises to
/// the same bytes from two independent sessions: the simulator is
/// deterministic and — with compilation bit-deterministic — so are the
/// compiled artifacts behind every cell.
#[test]
fn performance_report_json_is_byte_identical_across_sessions() {
    let workloads = determinism_workloads();
    let pipelines = variant_pipelines();
    let reference = Session::new()
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");
    for _ in 0..3 {
        let report = Session::new()
            .run_matrix(&workloads, &pipelines)
            .expect("matrix runs");
        assert_eq!(report, reference);
        assert_eq!(report.to_json(), reference.to_json());
        assert_eq!(report.render_table(), reference.render_table());
    }
    // The provenance audit trail is present in the serialised report.
    let json = reference.to_json();
    assert!(json.contains("\"provenance\":{\"module_hash\":"));
    assert!(json.contains("\"passes\":["));
}

/// Trace-store keys can be trusted across sessions: the fingerprint a fresh
/// build computes matches the one a different session computed for the same
/// (module, pipeline), so a persisted trace store could be shared between
/// independent builds.
#[test]
fn trace_keys_agree_across_sessions() {
    let module = memcmp_module(16);
    let pipeline = Pipeline::for_variant(ProtectionVariant::AnCode);
    let a = Session::new()
        .artifact("memcmp", &module, &pipeline)
        .expect("builds");
    let b = Session::new()
        .artifact("memcmp", &module, &pipeline)
        .expect("builds");
    assert_eq!(
        a.trace_key("memcmp_bench", &[]),
        b.trace_key("memcmp_bench", &[]),
        "identical keys from independent sessions"
    );
}
