//! `SecurityReport` serialisation coverage: the JSON document survives a
//! hand-rolled structural parse (the offline build has no serde to
//! round-trip through), `render_table` is asserted against its expected
//! shape, and the stats side-channel stays out of the deterministic output.

use secbranch::campaign::{BranchInversion, FaultModel, InstructionSkip, MatrixExecutor};
use secbranch::programs::integer_compare_module;
use secbranch::{Pipeline, ProtectionVariant, SecurityReport, Session, Workload};

fn small_report() -> SecurityReport {
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[7, 9],
    )];
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::Unprotected)
            .with_memory_size(1 << 16)
            .with_max_steps(100_000),
        Pipeline::for_variant(ProtectionVariant::AnCode)
            .with_memory_size(1 << 16)
            .with_max_steps(100_000),
    ];
    let models: [&dyn FaultModel; 2] = [&InstructionSkip, &BranchInversion];
    Session::new()
        .security_matrix(&workloads, &pipelines, &models)
        .expect("matrix runs")
}

/// A minimal structural JSON check: every quote-delimited string is left
/// intact and outside of strings the braces/brackets nest correctly down
/// to exactly zero. Returns the maximum depth as a sanity value.
fn check_balanced(json: &str) -> usize {
    let mut depth: i64 = 0;
    let mut max_depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                depth += 1;
                max_depth = max_depth.max(depth as usize);
            }
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "closer without opener");
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string");
    assert_eq!(depth, 0, "unbalanced braces/brackets");
    max_depth
}

#[test]
fn json_output_passes_a_structural_parse() {
    let report = small_report();
    let json = report.to_json();

    check_balanced(&json);
    assert!(json.starts_with("{\"cells\":["));
    assert!(json.ends_with("]}"));
    // One object per cell, each carrying the four top-level keys.
    let cells = report.cells.len();
    assert_eq!(cells, 4, "1 workload × 2 pipelines × 2 models");
    assert_eq!(json.matches("\"workload\":").count(), cells);
    assert_eq!(json.matches("\"pipeline\":").count(), cells);
    assert_eq!(
        json.matches("\"model\":").count(),
        2 * cells,
        "once per cell label, once inside each embedded campaign report"
    );
    assert_eq!(json.matches("\"report\":").count(), cells);
    // Every embedded campaign report serialises its counters and spaces.
    assert_eq!(json.matches("\"escape_rate\":").count(), cells);
    assert!(json.contains("\"model\":\"skip\""));
    assert!(json.contains("\"model\":\"branch-invert\""));
    assert!(json.contains("\"workload\":\"integer compare\""));
    // Stats never leak into the deterministic document.
    assert!(!json.contains("wall"));
    assert!(!json.contains("trace_hits"));

    // The stats serialise separately and are well-formed too.
    let stats_json = report.stats.to_json();
    check_balanced(&stats_json);
    assert!(stats_json.contains("\"trace_hits\":"));
    assert!(stats_json.contains("\"total_wall_micros\":"));
    assert!(stats_json.contains("\"cell_compute_micros\":["));
}

#[test]
fn json_strings_are_escaped_in_cell_labels() {
    let workloads = [Workload::new(
        "quote \" and tab\t",
        integer_compare_module(),
        "integer_compare",
        &[1, 1],
    )];
    let pipelines = [Pipeline::for_variant(ProtectionVariant::Unprotected)
        .with_memory_size(1 << 16)
        .with_max_steps(100_000)];
    let models: [&dyn FaultModel; 1] = [&BranchInversion];
    let report = Session::new()
        .security_matrix(&workloads, &pipelines, &models)
        .expect("matrix runs");
    let json = report.to_json();
    check_balanced(&json);
    assert!(json.contains("quote \\\" and tab\\t"));
}

#[test]
fn render_table_has_the_expected_shape() {
    let report = small_report();
    let table = report.render_table();
    let lines: Vec<&str> = table.lines().collect();

    // Header plus one row per workload × pipeline (1 × 2).
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("workload"));
    assert!(lines[0].contains("pipeline"));
    assert!(lines[0].contains("skip"));
    assert!(lines[0].contains("branch-invert"));
    for row in &lines[1..] {
        assert!(row.contains("integer compare"));
        assert_eq!(
            row.matches(" | ").count(),
            2,
            "one column per model: {row:?}"
        );
        assert!(row.contains('%'), "cells render rates: {row:?}");
    }

    // Deterministic semantic snapshot: the unprotected row's
    // branch-inversion cell escapes 100%, the prototype row's 0%.
    let unprotected_row = lines[1];
    assert!(unprotected_row.contains("unprotected"));
    assert!(
        unprotected_row.contains("(100.000%)"),
        "unprotected branch inversion escapes: {unprotected_row:?}"
    );
    let prototype_row = lines[2];
    assert!(prototype_row.contains("prototype"));
    assert!(
        prototype_row.contains("(0.000%)"),
        "prototype detects inversions: {prototype_row:?}"
    );

    // The table is pure presentation: re-rendering is stable.
    assert_eq!(table, report.render_table());
}

/// Equality ignores stats (two identical matrices never share wall times),
/// but compares every cell.
#[test]
fn report_equality_ignores_stats_but_not_cells() {
    let workloads = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[7, 9],
    )];
    let pipelines = [Pipeline::for_variant(ProtectionVariant::Unprotected)
        .with_memory_size(1 << 16)
        .with_max_steps(100_000)];
    let models: [&dyn FaultModel; 1] = [&InstructionSkip];
    let executor = MatrixExecutor::new().with_threads(2);
    let a = Session::new()
        .security_matrix_with(&executor, &workloads, &pipelines, &models, None)
        .expect("runs");
    let b = Session::new()
        .security_matrix_with(&executor, &workloads, &pipelines, &models, None)
        .expect("runs");
    assert_eq!(a, b, "identical matrices compare equal despite timings");

    let different_args = [Workload::new(
        "integer compare",
        integer_compare_module(),
        "integer_compare",
        &[7, 7],
    )];
    let c = Session::new()
        .security_matrix_with(&executor, &different_args, &pipelines, &models, None)
        .expect("runs");
    assert_ne!(a, c, "different cells must not compare equal");
}
