//! Differential fuzzing of the micro-op interpreter against the
//! `Instr`-level reference interpreter.
//!
//! `Simulator::new` executes pre-decoded micro-ops; `Simulator::reference`
//! keeps the original per-step `match instr` loop as an independent oracle.
//! This harness generates seeded random programs over the full `Instr`
//! surface (every variant, including degenerate shapes: shift amounts past
//! 31, duplicate push/pop lists, division by zero, out-of-bounds memory,
//! runaway loops) and asserts that both interpreters agree on *everything
//! observable*: the result or error, the executed pc trace, cycle and
//! instruction counts, and the final machine state — fault-free and under
//! injected faults from all five fault-point kinds.
//!
//! Programs are valid by construction (every branch targets an existing
//! label), but not necessarily well behaved: step limits, memory faults and
//! stack corruption are part of the surface and must fail identically.
//!
//! Set `INTERP_FUZZ_PROGRAMS` to change the program count (default 500).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secbranch_armv7m::{
    Cond, ExecResult, FaultAction, FaultHook, Instr, Machine, NoFaults, Operand2, Program,
    ProgramBuilder, Reg, SimError, Simulator, Target,
};
use secbranch_campaign::FaultPoint;

const MEMORY_SIZE: u32 = 4096;
const MAX_STEPS: u64 = 256;

fn program_count() -> u64 {
    std::env::var("INTERP_FUZZ_PROGRAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

/// Low registers used as general operands; sp/lr/pc are reached only
/// through the instructions that legitimately touch them (push/pop, bl,
/// bx), like compiler-emitted code.
fn low_reg(rng: &mut StdRng) -> Reg {
    Reg::ALL[rng.gen_range(0usize..8)]
}

fn operand2(rng: &mut StdRng) -> Operand2 {
    if rng.gen_range(0u32..2) == 0 {
        Operand2::Reg(low_reg(rng))
    } else {
        Operand2::Imm(rng.gen_range(0u32..64))
    }
}

/// A shift amount operand that sometimes exceeds 31, so the runtime `& 31`
/// masking path differs from the disassembled text.
fn shift_operand(rng: &mut StdRng) -> Operand2 {
    if rng.gen_range(0u32..3) == 0 {
        Operand2::Reg(low_reg(rng))
    } else {
        Operand2::Imm(rng.gen_range(0u32..40))
    }
}

/// A non-empty register list, in random order, occasionally with a
/// duplicate — both constructible and both exercised by the decoder's
/// presorting.
fn reg_list(rng: &mut StdRng, extra: Option<Reg>) -> Vec<Reg> {
    let count = rng.gen_range(1usize..4);
    let mut regs: Vec<Reg> = (0..count).map(|_| low_reg(rng)).collect();
    if let Some(extra) = extra {
        if rng.gen_range(0u32..3) == 0 {
            regs.push(extra);
        }
    }
    regs
}

/// One random instruction; `labels` is the number of label targets
/// available (one per instruction index).
fn random_instr(rng: &mut StdRng, labels: usize) -> Instr {
    let target = |rng: &mut StdRng| Target::label(format!("L{}", rng.gen_range(0usize..labels)));
    match rng.gen_range(0u32..25) {
        0 => Instr::MovImm {
            rd: low_reg(rng),
            // Past 0xFFFF sometimes, so both narrow and wide encodings (and
            // their cycle counts) are in the surface.
            imm: rng.gen_range(0u32..0x2_0000),
        },
        1 => Instr::Mov {
            rd: low_reg(rng),
            rm: low_reg(rng),
        },
        2 => Instr::Add {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: operand2(rng),
        },
        3 => Instr::Sub {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: operand2(rng),
        },
        4 => Instr::Mul {
            rd: low_reg(rng),
            rn: low_reg(rng),
            rm: low_reg(rng),
        },
        5 => Instr::Mls {
            rd: low_reg(rng),
            rn: low_reg(rng),
            rm: low_reg(rng),
            ra: low_reg(rng),
        },
        6 => Instr::Udiv {
            rd: low_reg(rng),
            rn: low_reg(rng),
            rm: low_reg(rng),
        },
        7 => Instr::And {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: operand2(rng),
        },
        8 => Instr::Orr {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: operand2(rng),
        },
        9 => Instr::Eor {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: operand2(rng),
        },
        10 => Instr::Lsl {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: shift_operand(rng),
        },
        11 => Instr::Lsr {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: shift_operand(rng),
        },
        12 => Instr::Asr {
            rd: low_reg(rng),
            rn: low_reg(rng),
            op2: shift_operand(rng),
        },
        13 => Instr::Cmp {
            rn: low_reg(rng),
            op2: operand2(rng),
        },
        14 => Instr::B {
            target: target(rng),
        },
        15 => Instr::BCond {
            cond: Cond::ALL[rng.gen_range(0usize..Cond::ALL.len())],
            target: target(rng),
        },
        16 => Instr::Bl {
            target: target(rng),
        },
        17 => Instr::Bx {
            // Mostly `bx lr` so a decent fraction of programs return; the
            // occasional low register exercises the arbitrary-target path.
            rm: if rng.gen_range(0u32..4) == 0 {
                low_reg(rng)
            } else {
                Reg::Lr
            },
        },
        18 => Instr::Ldr {
            rt: low_reg(rng),
            rn: low_reg(rng),
            offset: rng.gen_range(0u32..96) as i32 - 8,
        },
        19 => Instr::Str {
            rt: low_reg(rng),
            rn: low_reg(rng),
            offset: rng.gen_range(0u32..96) as i32 - 8,
        },
        20 => Instr::Ldrb {
            rt: low_reg(rng),
            rn: low_reg(rng),
            offset: rng.gen_range(0u32..96) as i32 - 8,
        },
        21 => Instr::Strb {
            rt: low_reg(rng),
            rn: low_reg(rng),
            offset: rng.gen_range(0u32..96) as i32 - 8,
        },
        22 => Instr::Push {
            regs: reg_list(rng, Some(Reg::Lr)),
        },
        23 => Instr::Pop {
            regs: reg_list(rng, Some(Reg::Pc)),
        },
        _ => Instr::Nop,
    }
}

/// A random program with every instruction index labelled (so any branch
/// target is valid by construction) and a final `bx lr` safety net.
fn random_program(rng: &mut StdRng) -> Program {
    let len = rng.gen_range(8usize..40);
    let mut p = ProgramBuilder::new();
    p.label("fuzz");
    for index in 0..len {
        p.label(format!("L{index}"));
        p.push(random_instr(rng, len));
    }
    p.label(format!("L{len}"));
    p.push(Instr::Bx { rm: Reg::Lr });
    p.assemble()
        .expect("labelled-by-construction programs assemble")
}

fn random_args(rng: &mut StdRng) -> Vec<u32> {
    (0..rng.gen_range(0usize..5))
        .map(|_| rng.gen_range(0u32..1024))
        .collect()
}

/// Records the `(step, pc)` sequence the simulator presents to its fault
/// hook — the executed-instruction trace — while delegating the decision
/// to an inner hook.
struct Recorder<'a> {
    inner: &'a mut dyn FaultHook,
    trace: Vec<(u64, usize)>,
}

impl FaultHook for Recorder<'_> {
    fn before_execute(
        &mut self,
        step: u64,
        pc: usize,
        instr: &Instr,
        machine: &mut Machine,
    ) -> FaultAction {
        self.trace.push((step, pc));
        self.inner.before_execute(step, pc, instr, machine)
    }
}

/// Runs `entry(args)` under `hook` on one simulator; returns the outcome,
/// the pc trace and the final machine snapshot.
fn run_one(
    sim: &mut Simulator,
    args: &[u32],
    hook: &mut dyn FaultHook,
) -> (
    Result<ExecResult, SimError>,
    Vec<(u64, usize)>,
    secbranch_armv7m::MachineState,
) {
    let mut recorder = Recorder {
        inner: hook,
        trace: Vec::new(),
    };
    let result = sim.call_with_faults("fuzz", args, MAX_STEPS, &mut recorder);
    let snapshot = sim.machine().snapshot();
    (result, recorder.trace, snapshot)
}

/// Asserts the micro-op and reference interpreters agree on one scenario.
fn assert_identical(program: &Program, args: &[u32], point: Option<&FaultPoint>, seed: u64) {
    let mut uop_sim = Simulator::new(program.clone(), MEMORY_SIZE);
    let mut ref_sim = Simulator::reference(program.clone(), MEMORY_SIZE);
    assert!(!uop_sim.is_reference());
    assert!(ref_sim.is_reference());

    let (uop_out, ref_out) = match point {
        None => (
            run_one(&mut uop_sim, args, &mut NoFaults),
            run_one(&mut ref_sim, args, &mut NoFaults),
        ),
        Some(point) => (
            run_one(&mut uop_sim, args, &mut point.hook()),
            run_one(&mut ref_sim, args, &mut point.hook()),
        ),
    };

    let context = || {
        let listing: Vec<String> = program
            .instructions()
            .iter()
            .enumerate()
            .map(|(i, instr)| format!("{i:>3}: {instr}"))
            .collect();
        format!(
            "seed={seed} args={args:?} fault={point:?}\n{}",
            listing.join("\n")
        )
    };
    assert_eq!(uop_out.0, ref_out.0, "result diverged\n{}", context());
    assert_eq!(uop_out.1, ref_out.1, "pc trace diverged\n{}", context());
    assert!(
        ref_sim.machine().state_matches(&uop_out.2),
        "final machine state diverged\n{}",
        context()
    );
    assert!(
        uop_sim.machine().state_matches(&ref_out.2),
        "final machine state diverged (reference side)\n{}",
        context()
    );
}

/// Five fault points — one per kind — at seeded random anchors.
/// Register flips stay on r0–r12: corrupting sp can push the stack pointer
/// somewhere both interpreters would *identically* overflow a debug-mode
/// address computation, which aborts the test process instead of comparing.
fn random_faults(rng: &mut StdRng) -> Vec<FaultPoint> {
    let step = |rng: &mut StdRng| rng.gen_range(1u64..=64);
    let first = step(rng);
    vec![
        FaultPoint::Skip { step: step(rng) },
        FaultPoint::DoubleSkip {
            first,
            second: first + rng.gen_range(1u64..=32),
        },
        FaultPoint::RegisterFlip {
            step: step(rng),
            reg: Reg::ALL[rng.gen_range(0usize..13)],
            bit: rng.gen_range(0u32..32),
        },
        FaultPoint::MemoryFlip {
            step: step(rng),
            addr: rng.gen_range(0u32..MEMORY_SIZE),
            bit: rng.gen_range(0u32..8),
        },
        FaultPoint::BranchInvert { step: step(rng) },
    ]
}

#[test]
fn micro_op_interpreter_is_byte_identical_to_the_reference() {
    let programs = program_count();
    for seed in 0..programs {
        let mut rng = StdRng::seed_from_u64(0xD1FF_0000 ^ seed);
        let program = random_program(&mut rng);
        let args = random_args(&mut rng);
        assert_identical(&program, &args, None, seed);
        for point in random_faults(&mut rng) {
            assert_identical(&program, &args, Some(&point), seed);
        }
    }
}

#[test]
fn decoder_is_total_and_round_trips_disassembly_on_random_programs() {
    // Decoder totality over the generated surface: every constructible
    // instruction decodes to exactly one micro-op (1:1 with the program)
    // whose disassembly reproduces the `Instr` display text exactly —
    // including unmasked shift amounts, original push/pop list order and
    // resolved branch targets.
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x0DE0_0000 ^ seed);
        let program = random_program(&mut rng);
        let decoded = program.decoded();
        assert_eq!(decoded.len(), program.instructions().len(), "seed={seed}");
        for (index, instr) in program.instructions().iter().enumerate() {
            assert_eq!(
                decoded.disassemble(index),
                instr.to_string(),
                "seed={seed} index={index}"
            );
        }
        let (uops, micros) = program.decode_stats().expect("decoded above");
        assert_eq!(uops, decoded.len() as u64);
        let _ = micros; // timing is environment-dependent; presence suffices
    }
}
