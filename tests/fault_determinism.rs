//! Fault-campaign determinism through the `Artifact` API: the same seed (and
//! the same artifact) must produce identical outcome counters, so the
//! security numbers of Section VI are reproducible run-to-run.

use secbranch::ancode::{Parameters, Predicate};
use secbranch::fault::ConditionCampaign;
use secbranch::programs::integer_compare_module;
use secbranch::{Artifact, Pipeline, ProtectionVariant};

fn protected_artifact() -> Artifact {
    Pipeline::for_variant(ProtectionVariant::AnCode)
        .with_memory_size(64 * 1024)
        .with_max_steps(1_000_000)
        .build(&integer_compare_module())
        .expect("builds")
}

/// The exhaustive instruction-skip sweep is deterministic: two sweeps over
/// the same artifact produce identical counters, and a separately built
/// artifact of the same pipeline agrees too.
#[test]
fn skip_sweep_is_deterministic_across_runs_and_builds() {
    let artifact = protected_artifact();
    let first = artifact
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    let second = artifact
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    assert_eq!(first.counts, second.counts);
    assert_eq!(first.reference, second.reference);

    let rebuilt = protected_artifact();
    let third = rebuilt
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    assert_eq!(first.counts, third.counts, "same fingerprint, same sweep");
}

/// The Monte-Carlo register-flip campaign is seed-deterministic through the
/// artifact API: same seed ⇒ identical counters, different seed ⇒ a
/// different injection schedule (almost surely different counters over 150
/// trials — and at minimum, the equality below must not be required).
#[test]
fn register_flip_campaign_is_seed_deterministic() {
    let artifact = protected_artifact();
    let a = artifact
        .register_flip_campaign("integer_compare", &[77, 77], 0xDEAD_BEEF, 150)
        .expect("runs");
    let b = artifact
        .register_flip_campaign("integer_compare", &[77, 77], 0xDEAD_BEEF, 150)
        .expect("runs");
    assert_eq!(a.counts, b.counts, "same seed, same outcome counters");
    assert_eq!(a.counts.total(), 150);

    let c = artifact
        .register_flip_campaign("integer_compare", &[77, 77], 0x0BAD_CAFE, 150)
        .expect("runs");
    assert_eq!(
        c.counts.total(),
        150,
        "different seed still runs all trials"
    );
}

/// The arithmetic-level condition campaign is seed-deterministic: same seed
/// ⇒ identical `ConditionOutcomeCounts`, for both predicate classes.
#[test]
fn condition_campaign_is_seed_deterministic() {
    for predicate in [Predicate::Eq, Predicate::Ult] {
        let run = |seed: u64| {
            ConditionCampaign::new(Parameters::paper_defaults(), predicate, seed).sweep(3, 20_000)
        };
        let a = run(2018);
        let b = run(2018);
        assert_eq!(a, b, "{predicate:?}: same seed, same sweep rows");
        assert_eq!(a.len(), 3);
        for (bits, counts) in &a {
            assert_eq!(counts.total(), 20_000, "{predicate:?} {bits} bits");
        }
    }
}
