//! Fault-campaign determinism through the `Artifact` API: the same seed (and
//! the same artifact) must produce identical outcome counters, so the
//! security numbers of Section VI are reproducible run-to-run.

use secbranch::ancode::{Parameters, Predicate};
use secbranch::campaign::{
    BranchInversion, CampaignRunner, DoubleInstructionSkip, FaultModel, InstructionSkip,
    MemoryBitFlip, RegisterBitFlip,
};
use secbranch::fault::ConditionCampaign;
use secbranch::programs::integer_compare_module;
use secbranch::{Artifact, Pipeline, ProtectionVariant};

fn protected_artifact() -> Artifact {
    Pipeline::for_variant(ProtectionVariant::AnCode)
        .with_memory_size(64 * 1024)
        .with_max_steps(1_000_000)
        .build(&integer_compare_module())
        .expect("builds")
}

fn unprotected_artifact() -> Artifact {
    Pipeline::for_variant(ProtectionVariant::Unprotected)
        .with_memory_size(64 * 1024)
        .with_max_steps(1_000_000)
        .build(&integer_compare_module())
        .expect("builds")
}

fn shipped_models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(DoubleInstructionSkip {
            max_injections: 300,
            seed: 0x2FA17,
        }),
        Box::new(RegisterBitFlip {
            trials: 200,
            seed: 0xDEAD_BEEF,
        }),
        Box::new(MemoryBitFlip {
            trials: 200,
            seed: 0x0BAD_CAFE,
        }),
        Box::new(BranchInversion),
    ]
}

/// The engine's merge is deterministic for every shipped fault model: the
/// same campaign on 1, 2 and 8 worker threads produces byte-identical JSON
/// reports (and therefore identical counters and attribution).
#[test]
fn campaign_reports_are_identical_across_thread_counts() {
    let artifact = protected_artifact();
    for model in shipped_models() {
        let reports: Vec<String> = [1, 2, 8]
            .into_iter()
            .map(|threads| {
                artifact
                    .campaign_with(
                        &CampaignRunner::new().with_threads(threads),
                        "integer_compare",
                        &[41, 999],
                        model.as_ref(),
                    )
                    .expect("runs")
                    .to_json()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "{}: 1 vs 2 threads", model.name());
        assert_eq!(reports[0], reports[2], "{}: 1 vs 8 threads", model.name());
    }
}

/// The branch-inversion attacker (the paper's core fault model) succeeds on
/// the unprotected variant and is fully stopped — or at worst strictly
/// reduced — by the full protection.
#[test]
fn branch_inversion_is_stopped_by_the_protection() {
    let unprotected = unprotected_artifact()
        .campaign("integer_compare", &[1234, 4321], &BranchInversion)
        .expect("runs");
    let protected = protected_artifact()
        .campaign("integer_compare", &[1234, 4321], &BranchInversion)
        .expect("runs");
    assert!(
        unprotected.counts.wrong_result_undetected > 0,
        "inverting an unprotected branch must flip the decision: {:?}",
        unprotected.counts
    );
    assert!(
        protected.escape_rate() < unprotected.escape_rate(),
        "protected {:?} vs unprotected {:?}",
        protected.counts,
        unprotected.counts
    );
    assert_eq!(
        protected.counts.wrong_result_undetected, 0,
        "the encoded branch decision detects every inversion: {:?}",
        protected.counts
    );
}

/// The thin sweep adapters and the engine agree: `Artifact::skip_sweep`
/// reports exactly the aggregate counters of an `InstructionSkip` campaign.
#[test]
fn skip_sweep_adapter_matches_the_engine() {
    let artifact = protected_artifact();
    let sweep = artifact
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    let campaign = artifact
        .campaign("integer_compare", &[41, 999], &InstructionSkip)
        .expect("runs");
    assert_eq!(sweep.counts, campaign.counts);
    assert_eq!(sweep.reference, campaign.reference);
    assert_eq!(
        campaign.counts.total(),
        campaign.reference.instructions,
        "one injection per dynamic instruction"
    );
}

/// A failing reference run surfaces its error (instead of a panic or an
/// empty report) for both the engine and the routed legacy entry points.
#[test]
fn reference_errors_are_returned_not_swept() {
    let artifact = protected_artifact();
    assert!(artifact.campaign("nope", &[], &InstructionSkip).is_err());
    assert!(artifact.skip_sweep("nope", &[]).is_err());
    assert!(artifact.register_flip_campaign("nope", &[], 1, 10).is_err());
}

/// The exhaustive instruction-skip sweep is deterministic: two sweeps over
/// the same artifact produce identical counters, and a separately built
/// artifact of the same pipeline agrees too.
#[test]
fn skip_sweep_is_deterministic_across_runs_and_builds() {
    let artifact = protected_artifact();
    let first = artifact
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    let second = artifact
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    assert_eq!(first.counts, second.counts);
    assert_eq!(first.reference, second.reference);

    let rebuilt = protected_artifact();
    let third = rebuilt
        .skip_sweep("integer_compare", &[41, 999])
        .expect("runs");
    assert_eq!(first.counts, third.counts, "same fingerprint, same sweep");
}

/// The Monte-Carlo register-flip campaign is seed-deterministic through the
/// artifact API: same seed ⇒ identical counters, different seed ⇒ a
/// different injection schedule (almost surely different counters over 150
/// trials — and at minimum, the equality below must not be required).
#[test]
fn register_flip_campaign_is_seed_deterministic() {
    let artifact = protected_artifact();
    let a = artifact
        .register_flip_campaign("integer_compare", &[77, 77], 0xDEAD_BEEF, 150)
        .expect("runs");
    let b = artifact
        .register_flip_campaign("integer_compare", &[77, 77], 0xDEAD_BEEF, 150)
        .expect("runs");
    assert_eq!(a.counts, b.counts, "same seed, same outcome counters");
    assert_eq!(a.counts.total(), 150);

    let c = artifact
        .register_flip_campaign("integer_compare", &[77, 77], 0x0BAD_CAFE, 150)
        .expect("runs");
    assert_eq!(
        c.counts.total(),
        150,
        "different seed still runs all trials"
    );
}

/// The arithmetic-level condition campaign is seed-deterministic: same seed
/// ⇒ identical `ConditionOutcomeCounts`, for both predicate classes.
#[test]
fn condition_campaign_is_seed_deterministic() {
    for predicate in [Predicate::Eq, Predicate::Ult] {
        let run = |seed: u64| {
            ConditionCampaign::new(Parameters::paper_defaults(), predicate, seed).sweep(3, 20_000)
        };
        let a = run(2018);
        let b = run(2018);
        assert_eq!(a, b, "{predicate:?}: same seed, same sweep rows");
        assert_eq!(a.len(), 3);
        for (bits, counts) in &a {
            assert_eq!(counts.total(), 20_000, "{predicate:?} {bits} bits");
        }
    }
}
