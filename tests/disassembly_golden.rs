//! Golden snapshot of a protected artifact's annotated disassembly.
//!
//! Compilation is bit-deterministic, so the full rendered listing of a
//! fixed module under a fixed pipeline is a stable artifact: any drift —
//! instruction selection, slot allocation, label naming, provenance tags,
//! CFI stub layout — shows up as a readable diff in review instead of
//! silently changing measured numbers.

use secbranch::ir::builder::FunctionBuilder;
use secbranch::ir::{Module, Predicate};
use secbranch::{Pipeline, ProtectionVariant};

/// The paper's running example: a password-check-shaped function with one
/// protected equality branch.
fn check_module() -> Module {
    let mut b = FunctionBuilder::new("check", 2);
    b.protect_branches();
    let grant = b.create_block("grant");
    let deny = b.create_block("deny");
    let cond = b.cmp(Predicate::Eq, b.param(0), b.param(1));
    b.branch(cond, grant, deny);
    b.switch_to(grant);
    b.ret(Some(1u32.into()));
    b.switch_to(deny);
    b.ret(Some(0u32.into()));
    let mut m = Module::new();
    m.add_function(b.finish());
    m
}

#[test]
fn protected_check_disassembly_matches_the_golden_listing() {
    let artifact = Pipeline::for_variant(ProtectionVariant::AnCode)
        .build(&check_module())
        .expect("builds");
    let listing = artifact.disassemble();
    assert_eq!(
        listing, GOLDEN,
        "disassembly drifted from the golden listing"
    );
}

const GOLDEN: &str = r#"; module: 86abf03a85cf8c9b
; pipeline: cfi=Full;passes=[standard:an-coder(A=63877,Cord=29982,Ceq=14991,only_protected=true)];mem=1048576;steps=500000000
; artifact: cfi=Full;passes=[standard:an-coder(A=63877,Cord=29982,Ceq=14991,only_protected=true)];mem=1048576;steps=500000000|module=86abf03a85cf8c9b
; passes: [loop-decoupler, lower-select, lower-switch, an-coder, dce]

check:
     0  0x0000  push {lr}               ; prologue
     1  0x0002  sub sp, sp, #32         ; prologue
     2  0x0004  str r0, [sp, #0]        ; prologue
     3  0x0006  str r1, [sp, #4]        ; prologue
     4  0x0008  mov r3, #3484065116     ; cfi
     5  0x0010  mov r12, #3758096392    ; cfi
     6  0x0018  str r3, [r12, #0]       ; cfi
     7  0x001c  b @8                    ; prologue
check.bb0:
     8  0x001e  ldr r0, [sp, #0]        ; body
     9  0x0020  mov r1, #63877          ; body
    10  0x0024  mul r2, r0, r1          ; body
    11  0x0028  str r2, [sp, #12]       ; body
    12  0x002a  ldr r0, [sp, #4]        ; body
    13  0x002c  mov r1, #63877          ; body
    14  0x0030  mul r2, r0, r1          ; body
    15  0x0034  str r2, [sp, #16]       ; body
    16  0x0036  ldr r0, [sp, #12]       ; body
    17  0x0038  ldr r1, [sp, #16]       ; body
    18  0x003a  mov r3, #14991          ; an-coder
    19  0x003e  sub r2, r0, r1          ; an-coder
    20  0x0040  sub r1, r1, r0          ; an-coder
    21  0x0042  add r2, r2, r3          ; an-coder
    22  0x0044  add r1, r1, r3          ; an-coder
    23  0x0046  mov r3, #63877          ; an-coder
    24  0x004a  udiv r0, r2, r3         ; an-coder
    25  0x004e  mls r2, r0, r3, r2      ; an-coder
    26  0x0052  udiv r0, r1, r3         ; an-coder
    27  0x0056  mls r1, r0, r3, r1      ; an-coder
    28  0x005a  add r2, r2, r1          ; an-coder
    29  0x005c  str r2, [sp, #20]       ; body
    30  0x005e  ldr r0, [sp, #20]       ; body
    31  0x0060  mov r1, #29982          ; body
    32  0x0064  cmp r0, r1              ; body
    33  0x0066  mov r2, #1              ; body
    34  0x0068  beq @36                 ; body
    35  0x006a  mov r2, #0              ; body
check.cmp1:
    36  0x006c  str r2, [sp, #24]       ; body
    37  0x006e  ldr r0, [sp, #24]       ; body
    38  0x0070  cmp r0, #0              ; body
    39  0x0072  bne @59                 ; body
    40  0x0074  b @66                   ; body
check.bb1:
    41  0x0076  mov r0, #1              ; body
    42  0x0078  mov r3, #3422861947     ; cfi
    43  0x0080  mov r12, #3758096388    ; cfi
    44  0x0088  str r3, [r12, #0]       ; cfi
    45  0x008c  mov r3, #840936749      ; cfi
    46  0x0094  mov r12, #3758096392    ; cfi
    47  0x009c  str r3, [r12, #0]       ; cfi
    48  0x00a0  add sp, sp, #32         ; epilogue
    49  0x00a2  pop {pc}                ; epilogue
check.bb2:
    50  0x00a4  mov r0, #0              ; body
    51  0x00a6  mov r3, #587282396      ; cfi
    52  0x00ae  mov r12, #3758096388    ; cfi
    53  0x00b6  str r3, [r12, #0]       ; cfi
    54  0x00ba  mov r3, #840936749      ; cfi
    55  0x00c2  mov r12, #3758096392    ; cfi
    56  0x00ca  str r3, [r12, #0]       ; cfi
    57  0x00ce  add sp, sp, #32         ; epilogue
    58  0x00d0  pop {pc}                ; epilogue
check.e0_1t:
    59  0x00d2  ldr r2, [sp, #20]       ; cfi-edge
    60  0x00d4  mov r12, #3758096384    ; cfi-edge
    61  0x00dc  str r2, [r12, #0]       ; cfi-edge
    62  0x00e0  mov r3, #61755961       ; cfi-edge
    63  0x00e8  mov r12, #3758096384    ; cfi-edge
    64  0x00f0  str r3, [r12, #0]       ; cfi-edge
    65  0x00f4  b @41                   ; cfi-edge
check.e0_2f:
    66  0x00f6  ldr r2, [sp, #20]       ; cfi-edge
    67  0x00f8  mov r12, #3758096384    ; cfi-edge
    68  0x0100  str r2, [r12, #0]       ; cfi-edge
    69  0x0104  mov r3, #3970637920     ; cfi-edge
    70  0x010c  mov r12, #3758096384    ; cfi-edge
    71  0x0114  str r3, [r12, #0]       ; cfi-edge
    72  0x0118  b @50                   ; cfi-edge
"#;
