//! Cross-crate integration tests: the full pipeline from IR workloads through
//! the protection passes, code generation, and execution on the simulator,
//! cross-checked against the IR interpreter and the AN-code reference
//! implementation.

use secbranch::ancode::{compare, Parameters};
use secbranch::ir::interp;
use secbranch::programs::{
    bootloader_module, integer_compare_module, memcmp_module, password_check_module, BootImage,
    BOOT_OK, GRANT,
};
use secbranch::{build, measure, ProtectionVariant};

/// The encoded-comparison arithmetic agrees across its three implementations:
/// the `secbranch-ancode` reference, the IR interpreter's `enccmp`, and the
/// code generated for the ARMv7-M simulator.
#[test]
fn encoded_compare_implementations_agree() {
    use secbranch::ir::builder::FunctionBuilder;
    use secbranch::ir::{Module, Predicate as IrPredicate};

    let params = Parameters::paper_defaults();
    let code = params.code();
    let pairs = [(41u32, 1000u32), (1000, 41), (500, 500), (0, 63_000)];
    for (ir_pred, an_pred, c) in [
        (IrPredicate::Ult, compare::Predicate::Ult, params.ordering_constant()),
        (IrPredicate::Eq, compare::Predicate::Eq, params.equality_constant()),
        (IrPredicate::Uge, compare::Predicate::Uge, params.ordering_constant()),
    ] {
        for (x, y) in pairs {
            let reference = compare::encoded_compare(
                &params,
                an_pred,
                code.encode(x).expect("in range"),
                code.encode(y).expect("in range"),
            );

            // IR interpreter.
            let mut b = FunctionBuilder::new("enc", 2);
            let xe = b.bin(secbranch::ir::BinOp::Mul, b.param(0), code.constant());
            let ye = b.bin(secbranch::ir::BinOp::Mul, b.param(1), code.constant());
            let cond = b.encoded_compare(ir_pred, xe, ye, code.constant(), c);
            b.ret(Some(cond));
            let mut m = Module::new();
            m.add_function(b.finish());
            let interp_value = interp::run(&m, "enc", &[x, y]).expect("runs").return_value;
            assert_eq!(interp_value, Some(reference), "interp {x} {ir_pred:?} {y}");

            // Generated ARMv7-M code.
            let compiled = build(&m, ProtectionVariant::Unprotected).expect("compiles");
            let mut sim = compiled.into_simulator(64 * 1024);
            let sim_value = sim.call("enc", &[x, y], 100_000).expect("runs").return_value;
            assert_eq!(sim_value, reference, "simulator {x} {ir_pred:?} {y}");
        }
    }
}

/// Every protection variant preserves the functional behaviour of every
/// workload, and the fault-free CFI state stays clean.
#[test]
fn all_variants_preserve_workload_semantics() {
    let variants = [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ];

    let integer = integer_compare_module();
    let memcmp = memcmp_module(32);
    let password = password_check_module(12);
    for variant in variants {
        let eq = measure(&integer, variant, "integer_compare", &[7, 7]).expect("runs");
        assert_eq!(eq.result.return_value, 1, "{variant:?}");
        let ne = measure(&integer, variant, "integer_compare", &[7, 9]).expect("runs");
        assert_eq!(ne.result.return_value, 0, "{variant:?}");
        let mc = measure(&memcmp, variant, "memcmp_bench", &[]).expect("runs");
        assert_eq!(mc.result.return_value, 1, "{variant:?}");
        let pw = measure(&password, variant, "password_check", &[]).expect("runs");
        assert_eq!(pw.result.return_value, GRANT, "{variant:?}");
        if variant != ProtectionVariant::Unprotected {
            for m in [&eq, &ne, &mc, &pw] {
                assert_eq!(m.result.cfi_violations, 0, "{variant:?} must stay CFI-clean");
            }
        }
    }
}

/// The interpreter and the simulator agree on the bootloader macro-benchmark,
/// and the prototype overhead over the CFI baseline is small (the Table III
/// "bootloader" row: ~2.4 % size, ~0.001 % runtime in the paper).
#[test]
fn bootloader_end_to_end_shape_matches_the_paper() {
    let image = BootImage::generate(1024, 99);
    let module = bootloader_module(&image);

    // Ground truth from the interpreter.
    let interp_result = interp::run(&module, "bootloader", &[]).expect("runs");
    assert_eq!(interp_result.return_value, Some(BOOT_OK));

    let baseline = measure(&module, ProtectionVariant::CfiOnly, "bootloader", &[]).expect("runs");
    let prototype = measure(&module, ProtectionVariant::AnCode, "bootloader", &[]).expect("runs");
    assert_eq!(baseline.result.return_value, BOOT_OK);
    assert_eq!(prototype.result.return_value, BOOT_OK);
    assert_eq!(prototype.result.cfi_violations, 0);

    let size_overhead = prototype.size_overhead_percent(&baseline);
    let runtime_overhead = prototype.runtime_overhead_percent(&baseline);
    assert!(
        size_overhead > 0.0 && size_overhead < 25.0,
        "bootloader size overhead should be small, got {size_overhead:.2}%"
    );
    assert!(
        runtime_overhead >= 0.0 && runtime_overhead < 5.0,
        "bootloader runtime overhead should be negligible, got {runtime_overhead:.3}%"
    );
}

/// The micro-benchmark shape of Table III: the prototype's code-size overhead
/// over the CFI baseline stays below the duplication baseline's on the
/// memcmp workload (the paper reports 306 % vs 300 % absolute size but a
/// lower runtime, and for integer compare a clear win; our naive register
/// allocator shifts the absolute numbers, the ordering of runtime overheads
/// is preserved).
#[test]
fn prototype_runtime_beats_duplication_on_memcmp() {
    let module = memcmp_module(128);
    let baseline = measure(&module, ProtectionVariant::CfiOnly, "memcmp_bench", &[]).expect("runs");
    let duplication =
        measure(&module, ProtectionVariant::Duplication(6), "memcmp_bench", &[]).expect("runs");
    let prototype = measure(&module, ProtectionVariant::AnCode, "memcmp_bench", &[]).expect("runs");
    assert!(
        prototype.runtime_overhead_percent(&baseline)
            < duplication.runtime_overhead_percent(&baseline),
        "prototype {:.1}% vs duplication {:.1}%",
        prototype.runtime_overhead_percent(&baseline),
        duplication.runtime_overhead_percent(&baseline)
    );
}
