//! Cross-crate integration tests: the full pipeline from IR workloads through
//! the protection passes, code generation, and execution on the simulator,
//! cross-checked against the IR interpreter and the AN-code reference
//! implementation.

use secbranch::ancode::{compare, Parameters};
use secbranch::ir::interp;
use secbranch::programs::{
    bootloader_module, integer_compare_module, memcmp_module, password_check_module, BootImage,
    BOOT_OK, GRANT,
};
use secbranch::{build, Pipeline, ProtectionVariant, Session, Workload};

/// The encoded-comparison arithmetic agrees across its three implementations:
/// the `secbranch-ancode` reference, the IR interpreter's `enccmp`, and the
/// code generated for the ARMv7-M simulator. (Also exercises the legacy
/// `build` wrapper, which must keep compiling unchanged.)
#[test]
fn encoded_compare_implementations_agree() {
    use secbranch::ir::builder::FunctionBuilder;
    use secbranch::ir::{Module, Predicate as IrPredicate};

    let params = Parameters::paper_defaults();
    let code = params.code();
    let pairs = [(41u32, 1000u32), (1000, 41), (500, 500), (0, 63_000)];
    for (ir_pred, an_pred, c) in [
        (
            IrPredicate::Ult,
            compare::Predicate::Ult,
            params.ordering_constant(),
        ),
        (
            IrPredicate::Eq,
            compare::Predicate::Eq,
            params.equality_constant(),
        ),
        (
            IrPredicate::Uge,
            compare::Predicate::Uge,
            params.ordering_constant(),
        ),
    ] {
        for (x, y) in pairs {
            let reference = compare::encoded_compare(
                &params,
                an_pred,
                code.encode(x).expect("in range"),
                code.encode(y).expect("in range"),
            );

            // IR interpreter.
            let mut b = FunctionBuilder::new("enc", 2);
            let xe = b.bin(secbranch::ir::BinOp::Mul, b.param(0), code.constant());
            let ye = b.bin(secbranch::ir::BinOp::Mul, b.param(1), code.constant());
            let cond = b.encoded_compare(ir_pred, xe, ye, code.constant(), c);
            b.ret(Some(cond));
            let mut m = Module::new();
            m.add_function(b.finish());
            let interp_value = interp::run(&m, "enc", &[x, y]).expect("runs").return_value;
            assert_eq!(interp_value, Some(reference), "interp {x} {ir_pred:?} {y}");

            // Generated ARMv7-M code, through the legacy free-function path.
            let compiled = build(&m, ProtectionVariant::Unprotected).expect("compiles");
            let mut sim = compiled.into_simulator(64 * 1024);
            let sim_value = sim
                .call("enc", &[x, y], 100_000)
                .expect("runs")
                .return_value;
            assert_eq!(sim_value, reference, "simulator {x} {ir_pred:?} {y}");
        }
    }
}

/// Every protection variant preserves the functional behaviour of every
/// workload, and the fault-free CFI state stays clean. One `Session` builds
/// each (workload, variant) cell exactly once; the second execution of the
/// integer-compare artifact reuses the cached build.
#[test]
fn all_variants_preserve_workload_semantics() {
    let pipelines: Vec<Pipeline> = [
        ProtectionVariant::Unprotected,
        ProtectionVariant::CfiOnly,
        ProtectionVariant::Duplication(6),
        ProtectionVariant::AnCode,
    ]
    .iter()
    .map(|v| Pipeline::for_variant(*v))
    .collect();

    let integer = integer_compare_module();
    let workloads = [
        Workload::new("integer eq", integer.clone(), "integer_compare", &[7, 7]),
        Workload::new("memcmp", memcmp_module(32), "memcmp_bench", &[]),
        Workload::new("password", password_check_module(12), "password_check", &[]),
    ];

    let mut session = Session::new();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");
    assert_eq!(session.builds(), 12, "one compilation per cell");

    for cell in &report.cells {
        let expected = match cell.workload.as_str() {
            "integer eq" | "memcmp" => 1,
            "password" => GRANT,
            other => panic!("unexpected workload {other}"),
        };
        assert_eq!(
            cell.measurement.result.return_value, expected,
            "{} under {}",
            cell.workload, cell.pipeline
        );
        if cell.pipeline != "unprotected" {
            assert_eq!(
                cell.measurement.result.cfi_violations, 0,
                "{} under {} must stay CFI-clean",
                cell.workload, cell.pipeline
            );
        }
    }

    // The unequal-input check runs on the cached artifacts: no new builds.
    for pipeline in &pipelines {
        let artifact = session
            .artifact("integer eq", &integer, pipeline)
            .expect("cached artifact");
        let ne = artifact.run("integer_compare", &[7, 9]).expect("runs");
        assert_eq!(ne.return_value, 0, "{}", pipeline.label());
    }
    assert_eq!(session.builds(), 12, "re-use, not re-compilation");
}

/// The interpreter and the simulator agree on the bootloader macro-benchmark,
/// and the prototype overhead over the CFI baseline is small (the Table III
/// "bootloader" row: ~2.4 % size, ~0.001 % runtime in the paper).
#[test]
fn bootloader_end_to_end_shape_matches_the_paper() {
    let image = BootImage::generate(1024, 99);
    let module = bootloader_module(&image);

    // Ground truth from the interpreter.
    let interp_result = interp::run(&module, "bootloader", &[]).expect("runs");
    assert_eq!(interp_result.return_value, Some(BOOT_OK));

    let mut session = Session::new();
    let workloads = [Workload::new("bootloader", module, "bootloader", &[])];
    let pipelines = [
        Pipeline::for_variant(ProtectionVariant::CfiOnly),
        Pipeline::for_variant(ProtectionVariant::AnCode),
    ];
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");

    let baseline = report.cell("bootloader", "cfi").expect("baseline cell");
    let prototype = report
        .cell("bootloader", "prototype")
        .expect("prototype cell");
    assert_eq!(baseline.measurement.result.return_value, BOOT_OK);
    assert_eq!(prototype.measurement.result.return_value, BOOT_OK);
    assert_eq!(prototype.measurement.result.cfi_violations, 0);
    assert_eq!(
        baseline.size_overhead_percent, None,
        "baseline has no overhead"
    );

    let size_overhead = prototype.size_overhead_percent.expect("vs baseline");
    let runtime_overhead = prototype.runtime_overhead_percent.expect("vs baseline");
    assert!(
        size_overhead > 0.0 && size_overhead < 25.0,
        "bootloader size overhead should be small, got {size_overhead:.2}%"
    );
    assert!(
        (0.0..5.0).contains(&runtime_overhead),
        "bootloader runtime overhead should be negligible, got {runtime_overhead:.3}%"
    );
}

/// The micro-benchmark shape of Table III: the prototype's runtime overhead
/// over the CFI baseline stays below the duplication baseline's on the
/// memcmp workload (the paper reports 306 % vs 300 % absolute size but a
/// lower runtime, and for integer compare a clear win; our naive register
/// allocator shifts the absolute numbers, the ordering of runtime overheads
/// is preserved).
#[test]
fn prototype_runtime_beats_duplication_on_memcmp() {
    let mut session = Session::new();
    let workloads = [Workload::new(
        "memcmp",
        memcmp_module(128),
        "memcmp_bench",
        &[],
    )];
    let pipelines: Vec<Pipeline> = ProtectionVariant::TABLE_THREE
        .iter()
        .map(|v| Pipeline::for_variant(*v))
        .collect();
    let report = session
        .run_matrix(&workloads, &pipelines)
        .expect("matrix runs");

    let duplication = report
        .cell("memcmp", "duplication(x6)")
        .and_then(|c| c.runtime_overhead_percent)
        .expect("duplication cell");
    let prototype = report
        .cell("memcmp", "prototype")
        .and_then(|c| c.runtime_overhead_percent)
        .expect("prototype cell");
    assert!(
        prototype < duplication,
        "prototype {prototype:.1}% vs duplication {duplication:.1}%"
    );
}
