//! Workspace root package for the `secbranch` reproduction of
//! *Securing Conditional Branches in the Presence of Fault Attacks* (DATE 2018).
//!
//! This crate only hosts the workspace-level examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual library lives in the
//! [`secbranch`] facade crate and the substrate crates it re-exports.

pub use secbranch as facade;
